#include "core/workflow_manager.h"

#include <memory>
#include <stdexcept>

#include "json/parse.h"
#include "json/write.h"
#include "support/log.h"
#include "wfbench/task_params.h"

namespace wfs::core {

struct WorkflowManager::RunState {
  ExecutionPlan plan;
  CompletionCallback on_complete;
  WorkflowRunResult result;
  sim::SimTime started_at = 0;
  sim::SimTime phase_started_at = 0;
  std::size_t phase_pending = 0;
  std::size_t phase_failed = 0;
};

WorkflowManager::WorkflowManager(sim::Simulation& sim, net::Router& router,
                                 storage::DataStore& fs, WfmConfig config)
    : sim_(sim), router_(router), fs_(fs), config_(std::move(config)) {}

void WorkflowManager::run(const wfcommons::Workflow& workflow, CompletionCallback on_complete) {
  run(build_plan(workflow, config_.workdir), std::move(on_complete));
}

void WorkflowManager::run(ExecutionPlan plan, CompletionCallback on_complete) {
  if (active_) throw std::logic_error("WorkflowManager: a run is already active");
  active_ = true;

  auto state = std::make_shared<RunState>();
  state->result.workflow_name = plan.workflow_name;
  state->result.tasks_total = plan.task_count();
  state->plan = std::move(plan);
  state->on_complete = std::move(on_complete);
  state->started_at = sim_.now();

  if (config_.stage_external_inputs) {
    for (const wfcommons::TaskFile& file : state->plan.external_inputs) {
      fs_.stage(file.name, file.size_bytes);
    }
  }

  WFS_LOG_INFO("wfm", "running {} ({} tasks, {} phases)", state->result.workflow_name,
               state->result.tasks_total, state->plan.phases.size());

  if (config_.add_header_tail) {
    // The header function marks the run's start on the platform (and warms
    // the route); it carries no files and no work.
    send_marker(state, "header", [this, state] { start_phase(state, 0); });
  } else {
    start_phase(state, 0);
  }
}

void WorkflowManager::send_marker(std::shared_ptr<RunState> state, const std::string& suffix,
                                  std::function<void()> next) {
  if (state->plan.phases.empty() || state->plan.phases.front().empty()) {
    next();
    return;
  }
  wfbench::TaskParams params;
  params.name = state->result.workflow_name + "_" + suffix;
  params.percent_cpu = 0.1;
  params.cpu_work = 0.0;
  params.memory_bytes = 0;
  params.workdir = config_.workdir;

  net::HttpRequest request;
  request.url = net::parse_url(state->plan.phases.front().front().api_url);
  request.body = json::write_compact(wfbench::to_json(params));
  router_.send(std::move(request), [next = std::move(next)](const net::HttpResponse&) {
    // Marker outcomes do not affect the run result.
    next();
  });
}

void WorkflowManager::start_phase(std::shared_ptr<RunState> state, std::size_t phase_index) {
  if (phase_index >= state->plan.phases.size()) {
    finish_run(state);
    return;
  }
  const auto& phase = state->plan.phases[phase_index];
  state->phase_started_at = sim_.now();
  state->phase_pending = phase.size();
  state->phase_failed = 0;
  WFS_LOG_DEBUG("wfm", "phase {} of {}: {} functions", phase_index,
                state->plan.phases.size(), phase.size());
  if (phase.empty()) {
    // Degenerate but possible via hand-built plans.
    state->result.phases.push_back(PhaseOutcome{phase_index, 0, 0, 0.0});
    sim_.schedule_in(config_.phase_delay,
                     [this, state, phase_index] { start_phase(state, phase_index + 1); });
    return;
  }
  // All functions of the phase are collected and simultaneously executed
  // (paper §III-C).
  for (std::size_t t = 0; t < phase.size(); ++t) {
    dispatch_task(state, phase_index, t, config_.max_input_polls);
  }
}

void WorkflowManager::dispatch_task(std::shared_ptr<RunState> state, std::size_t phase_index,
                                    std::size_t task_index, int polls_left) {
  const PlannedTask& task = state->plan.phases[phase_index][task_index];
  if (config_.check_inputs) {
    bool all_present = true;
    for (const std::string& input : task.params.inputs) {
      if (!fs_.exists(input)) {
        all_present = false;
        break;
      }
    }
    if (!all_present) {
      if (polls_left <= 0) {
        ++state->result.input_wait_timeouts;
        TaskOutcome outcome;
        outcome.name = task.name;
        outcome.ok = false;
        outcome.phase = phase_index;
        outcome.started_seconds = sim::to_seconds(sim_.now() - state->started_at);
        outcome.error = "input files never appeared on the shared drive";
        task_finished(state, phase_index, outcome);
        return;
      }
      sim_.schedule_in(config_.input_poll_interval,
                       [this, state, phase_index, task_index, polls_left] {
                         dispatch_task(state, phase_index, task_index, polls_left - 1);
                       });
      return;
    }
  }
  send_request(state, phase_index, task_index, config_.task_retries);
}

void WorkflowManager::send_request(std::shared_ptr<RunState> state, std::size_t phase_index,
                                   std::size_t task_index, int retries_left) {
  const PlannedTask& task = state->plan.phases[phase_index][task_index];
  net::HttpRequest request;
  request.url = net::parse_url(task.api_url);
  request.body = json::write_compact(wfbench::to_json(task.params));
  const sim::SimTime sent_at = sim_.now();
  router_.send(std::move(request), [this, state, phase_index, task_index, retries_left,
                                    name = task.name,
                                    sent_at](const net::HttpResponse& response) {
    if (!response.ok() && retries_left > 0) {
      // Transient fault (pod killed mid-request, 503 during scale-down):
      // re-invoke after a short backoff — the function is idempotent, it
      // just rewrites its outputs.
      ++state->result.task_retries;
      WFS_LOG_DEBUG("wfm", "retrying {} ({} attempts left) after status {}", name,
                    retries_left, response.status);
      sim_.schedule_in(config_.retry_backoff,
                       [this, state, phase_index, task_index, retries_left] {
                         send_request(state, phase_index, task_index, retries_left - 1);
                       });
      return;
    }
    TaskOutcome outcome;
    outcome.name = name;
    outcome.http_status = response.status;
    outcome.ok = response.ok();
    outcome.phase = phase_index;
    outcome.started_seconds = sim::to_seconds(sent_at - state->started_at);
    outcome.wall_seconds = sim::to_seconds(sim_.now() - sent_at);
    if (outcome.ok) {
      // Extract the service-reported runtime when the body parses.
      json::Value body;
      std::string error;
      if (json::try_parse(response.body, body, error)) {
        if (const json::Value* runtime = body.find("runtimeInSeconds")) {
          outcome.runtime_seconds = runtime->double_or(0.0);
        }
      }
    } else {
      outcome.error = response.body;
    }
    task_finished(state, phase_index, outcome);
  });
}

void WorkflowManager::task_finished(std::shared_ptr<RunState> state, std::size_t phase_index,
                                    const TaskOutcome& outcome) {
  if (!outcome.ok) {
    ++state->result.tasks_failed;
    ++state->phase_failed;
    WFS_LOG_DEBUG("wfm", "task {} failed: {} ({})", outcome.name, outcome.http_status,
                  outcome.error);
  }
  state->result.tasks.push_back(outcome);
  if (--state->phase_pending > 0) return;

  state->result.phases.push_back(
      PhaseOutcome{phase_index, state->plan.phases[phase_index].size(), state->phase_failed,
                   sim::to_seconds(sim_.now() - state->phase_started_at)});
  // The paper's fixed inter-phase settle delay.
  sim_.schedule_in(config_.phase_delay,
                   [this, state, phase_index] { start_phase(state, phase_index + 1); });
}

void WorkflowManager::finish_run(std::shared_ptr<RunState> state) {
  auto complete = [this, state] {
    state->result.completed = true;
    state->result.makespan_seconds = sim::to_seconds(sim_.now() - state->started_at);
    active_ = false;
    WFS_LOG_INFO("wfm", "{} finished in {:.1f}s ({} failed of {})",
                 state->result.workflow_name, state->result.makespan_seconds,
                 state->result.tasks_failed, state->result.tasks_total);
    if (state->on_complete) state->on_complete(std::move(state->result));
  };
  if (config_.add_header_tail) {
    send_marker(state, "tail", complete);
  } else {
    complete();
  }
}

}  // namespace wfs::core
