#include "core/trace.h"

#include <algorithm>
#include <map>

#include "json/write.h"
#include "support/format.h"

namespace wfs::core {
namespace {

// "blastall_00000002" -> "blastall"; names without the _<digits> suffix
// pass through unchanged.
std::string category_of(const std::string& task_name) {
  const std::size_t pos = task_name.rfind('_');
  if (pos == std::string::npos) return task_name;
  for (std::size_t i = pos + 1; i < task_name.size(); ++i) {
    if (task_name[i] < '0' || task_name[i] > '9') return task_name;
  }
  return task_name.substr(0, pos);
}

std::string bar(double begin, double end, double total, int width) {
  std::string out(static_cast<std::size_t>(width), ' ');
  if (total <= 0.0) return out;
  auto clamp_col = [&](double t) {
    return std::clamp(static_cast<int>(t / total * width), 0, width - 1);
  };
  const int from = clamp_col(begin);
  const int to = std::max(from, clamp_col(end));
  for (int i = from; i <= to; ++i) out[static_cast<std::size_t>(i)] = '#';
  return out;
}

}  // namespace

std::string render_gantt(const WorkflowRunResult& result, GanttOptions options) {
  const double total = std::max(result.makespan_seconds, 1e-9);
  std::string out = support::format("{} — {:.1f}s, {} tasks, {} phases\n",
                                    result.workflow_name, result.makespan_seconds,
                                    result.tasks_total, result.phases.size());

  if (options.by_category) {
    struct Lane {
      double begin = 1e300;
      double end = 0.0;
      std::size_t count = 0;
      std::size_t failed = 0;
    };
    std::map<std::pair<std::size_t, std::string>, Lane> lanes;
    for (const TaskOutcome& task : result.tasks) {
      Lane& lane = lanes[{task.phase, category_of(task.name)}];
      lane.begin = std::min(lane.begin, task.started_seconds);
      lane.end = std::max(lane.end, task.started_seconds + task.wall_seconds);
      ++lane.count;
      lane.failed += task.ok ? 0 : 1;
    }
    for (const auto& [key, lane] : lanes) {
      out += support::format(
          "  P{} {:<34} x{:<5} |{}| {:7.1f}s..{:.1f}s{}\n", key.first,
          key.second, lane.count, bar(lane.begin, lane.end, total, options.width),
          lane.begin, lane.end,
          lane.failed > 0 ? support::format("  ({} FAILED)", lane.failed) : std::string());
    }
    return out;
  }

  std::size_t rows = 0;
  for (const TaskOutcome& task : result.tasks) {
    if (rows++ >= options.max_rows) {
      out += support::format("  ... {} more tasks\n", result.tasks.size() - options.max_rows);
      break;
    }
    out += support::format("  {:<42} |{}| {:.1f}s\n", task.name,
                           bar(task.started_seconds,
                               task.started_seconds + task.wall_seconds, total,
                               options.width),
                           task.wall_seconds);
  }
  return out;
}

std::string chrome_trace_json(const WorkflowRunResult& result) {
  json::Array events;
  // Metadata: name the process after the workflow.
  {
    json::Object meta;
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", 1);
    json::Object args;
    args.set("name", result.workflow_name);
    meta.set("args", std::move(args));
    events.emplace_back(std::move(meta));
  }
  for (const TaskOutcome& task : result.tasks) {
    json::Object event;
    event.set("name", task.name);
    event.set("cat", category_of(task.name));
    event.set("ph", "X");  // complete event
    event.set("ts", static_cast<std::int64_t>(task.started_seconds * 1e6));
    event.set("dur", static_cast<std::int64_t>(task.wall_seconds * 1e6));
    event.set("pid", 1);
    event.set("tid", task.phase);
    json::Object args;
    args.set("status", task.http_status);
    args.set("ok", task.ok);
    args.set("service_runtime_s", task.runtime_seconds);
    if (!task.error.empty()) args.set("error", task.error);
    event.set("args", std::move(args));
    events.emplace_back(std::move(event));
  }
  json::Object document;
  document.set("displayTimeUnit", "ms");
  document.set("traceEvents", std::move(events));
  return json::write_compact(json::Value(std::move(document)));
}

}  // namespace wfs::core
