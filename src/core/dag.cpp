#include "core/dag.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "wfcommons/analysis.h"

namespace wfs::core {

namespace {

template <typename T>
std::size_t capacity_bytes(const std::vector<T>& v) noexcept {
  return v.capacity() * sizeof(T);
}

}  // namespace

wfbench::TaskParams ExecutionPlan::task_params(TaskId id) const {
  wfbench::TaskParams params;
  params.name = std::string(name(id));
  params.percent_cpu = percent_cpu_[id];
  params.cpu_work = cpu_work_[id];
  params.memory_bytes = memory_bytes_[id];
  const std::size_t outputs = output_count(id);
  params.outputs.reserve(outputs);
  for (std::size_t i = 0; i < outputs; ++i) {
    params.outputs.emplace_back(std::string(output_name(id, i)), output_size(id, i));
  }
  const std::size_t inputs = input_count(id);
  params.inputs.reserve(inputs);
  for (std::size_t i = 0; i < inputs; ++i) {
    params.inputs.emplace_back(input_name(id, i));
  }
  params.workdir = std::string(workdir(id));
  return params;
}

std::size_t ExecutionPlan::memory_footprint_bytes() const noexcept {
  std::size_t total = sizeof(*this);
  total += arena_.capacity();
  total += workflow_name_.capacity();
  total += capacity_bytes(names_) + api_urls_.capacity_bytes() + workdirs_.capacity_bytes();
  total += capacity_bytes(indegrees_);
  total += capacity_bytes(percent_cpu_) + capacity_bytes(cpu_work_);
  total += memory_bytes_.capacity_bytes();
  total += capacity_bytes(parent_offsets_) + capacity_bytes(parent_edges_);
  total += capacity_bytes(child_offsets_) + capacity_bytes(child_edges_);
  total += capacity_bytes(input_offsets_) + capacity_bytes(input_files_);
  total += capacity_bytes(output_offsets_) + capacity_bytes(output_files_);
  total += capacity_bytes(output_sizes_) + capacity_bytes(level_offsets_);
  total += capacity_bytes(external_inputs_);
  for (const wfcommons::TaskFile& file : external_inputs_) total += file.name.capacity();
  return total;
}

PlanBuilder::PlanBuilder(std::string workflow_name) {
  plan_.workflow_name_ = std::move(workflow_name);
}

void PlanBuilder::reserve(std::size_t tasks, std::size_t edges) {
  plan_.names_.reserve(tasks);
  plan_.api_urls_.reserve(tasks);
  plan_.workdirs_.reserve(tasks);
  levels_.reserve(tasks);
  plan_.percent_cpu_.reserve(tasks);
  plan_.cpu_work_.reserve(tasks);
  plan_.memory_bytes_.reserve(tasks);
  plan_.input_offsets_.reserve(tasks + 1);
  plan_.output_offsets_.reserve(tasks + 1);
  parent_stream_.reserve(edges);
  child_stream_.reserve(edges);
}

ExecutionPlan::StrRef PlanBuilder::intern(std::string_view text) {
  // Transparent lookup would avoid this copy; the table is build-time only
  // and dies with the builder, so keep it simple.
  auto it = intern_.find(std::string(text));
  if (it != intern_.end()) return it->second;
  if (plan_.arena_.size() + text.size() + 1 > std::numeric_limits<std::uint32_t>::max()) {
    throw std::length_error("PlanBuilder: string arena exceeds 4 GiB");
  }
  const auto ref = static_cast<ExecutionPlan::StrRef>(plan_.arena_.size());
  plan_.arena_.append(text);
  plan_.arena_.push_back('\0');  // .strtab layout: refs are offsets only
  intern_.emplace(std::string(text), ref);
  return ref;
}

TaskId PlanBuilder::add_task(std::uint32_t level, std::string_view name,
                             std::string_view api_url, double percent_cpu,
                             double cpu_work, std::uint64_t memory_bytes,
                             std::string_view workdir) {
  if (static_cast<std::int64_t>(level) < last_level_) {
    throw std::invalid_argument("PlanBuilder::add_task: levels must be non-decreasing");
  }
  last_level_ = level;
  const TaskId id = static_cast<TaskId>(plan_.names_.size());
  plan_.names_.push_back(intern(name));
  plan_.api_urls_.push_back(intern(api_url));
  plan_.workdirs_.push_back(intern(workdir));
  levels_.push_back(level);
  plan_.percent_cpu_.push_back(percent_cpu);
  plan_.cpu_work_.push_back(cpu_work);
  plan_.memory_bytes_.push_back(memory_bytes);
  // CSR starts for the new task's file lists (the +1 sentinel lands in build()).
  plan_.input_offsets_.push_back(static_cast<std::uint32_t>(plan_.input_files_.size()));
  plan_.output_offsets_.push_back(static_cast<std::uint32_t>(plan_.output_files_.size()));
  return id;
}

void PlanBuilder::add_input(std::string_view file) {
  if (plan_.names_.empty()) {
    throw std::logic_error("PlanBuilder::add_input: no task added yet");
  }
  plan_.input_files_.push_back(intern(file));
}

void PlanBuilder::add_output(std::string_view file, std::uint64_t size_bytes) {
  if (plan_.names_.empty()) {
    throw std::logic_error("PlanBuilder::add_output: no task added yet");
  }
  plan_.output_files_.push_back(intern(file));
  plan_.output_sizes_.push_back(size_bytes);
}

void PlanBuilder::add_parent(TaskId child, TaskId parent) {
  parent_stream_.emplace_back(child, parent);
}

void PlanBuilder::add_child(TaskId parent, TaskId child) {
  child_stream_.emplace_back(parent, child);
}

void PlanBuilder::ensure_levels(std::size_t count) {
  if (count > ensured_levels_) ensured_levels_ = count;
}

void PlanBuilder::set_external_inputs(std::vector<wfcommons::TaskFile> files) {
  plan_.external_inputs_ = std::move(files);
}

namespace {

/// Stable counting-sort of an edge stream into CSR: offsets[i] = start of
/// bucket i, edges laid out in stream order within each bucket — so a task's
/// neighbour list keeps exactly the order its edges were declared in.
void build_csr(const std::vector<std::pair<TaskId, TaskId>>& stream, std::size_t tasks,
               std::vector<std::uint32_t>& offsets, std::vector<TaskId>& edges,
               const char* what) {
  offsets.assign(tasks + 1, 0);
  for (const auto& [bucket, value] : stream) {
    if (bucket >= tasks || value >= tasks) {
      throw std::invalid_argument(std::string("PlanBuilder::build: ") + what +
                                  " edge references an unknown task id");
    }
    ++offsets[bucket + 1];
  }
  for (std::size_t i = 1; i <= tasks; ++i) offsets[i] += offsets[i - 1];
  edges.resize(stream.size());
  std::vector<std::uint32_t> cursor(offsets.begin(), offsets.end() - 1);
  for (const auto& [bucket, value] : stream) {
    edges[cursor[bucket]++] = value;
  }
}

}  // namespace

ExecutionPlan PlanBuilder::build() && {
  const std::size_t tasks = plan_.names_.size();

  build_csr(parent_stream_, tasks, plan_.parent_offsets_, plan_.parent_edges_, "parent");
  build_csr(child_stream_, tasks, plan_.child_offsets_, plan_.child_edges_, "child");

  plan_.indegrees_.resize(tasks);
  for (std::size_t i = 0; i < tasks; ++i) {
    plan_.indegrees_[i] = plan_.parent_offsets_[i + 1] - plan_.parent_offsets_[i];
  }

  // File-list CSR sentinels.
  plan_.input_offsets_.push_back(static_cast<std::uint32_t>(plan_.input_files_.size()));
  plan_.output_offsets_.push_back(static_cast<std::uint32_t>(plan_.output_files_.size()));

  // Level index: levels are non-decreasing (enforced in add_task), so each
  // level is the contiguous id range [offsets[l], offsets[l+1]).
  const std::size_t levels =
      std::max(ensured_levels_, static_cast<std::size_t>(last_level_ + 1));
  plan_.level_offsets_.assign(levels + 1, 0);
  for (std::uint32_t level : levels_) ++plan_.level_offsets_[level + 1];
  plan_.widest_ = 0;
  for (std::size_t l = 1; l <= levels; ++l) {
    plan_.widest_ = std::max(plan_.widest_, plan_.level_offsets_[l]);
    plan_.level_offsets_[l] += plan_.level_offsets_[l - 1];
  }

  // The plan is immutable from here on: drop constant columns to one value
  // and trim every column's capacity to its size.
  plan_.api_urls_.collapse_if_uniform();
  plan_.workdirs_.collapse_if_uniform();
  plan_.memory_bytes_.collapse_if_uniform();
  plan_.arena_.shrink_to_fit();
  plan_.names_.shrink_to_fit();
  plan_.percent_cpu_.shrink_to_fit();
  plan_.cpu_work_.shrink_to_fit();
  plan_.input_offsets_.shrink_to_fit();
  plan_.output_offsets_.shrink_to_fit();
  plan_.input_files_.shrink_to_fit();
  plan_.output_files_.shrink_to_fit();
  plan_.output_sizes_.shrink_to_fit();

  return std::move(plan_);
}

wfbench::TaskParams to_task_params(const wfcommons::Task& task, const std::string& workdir) {
  wfbench::TaskParams params;
  params.name = task.name;
  params.percent_cpu = task.percent_cpu;
  params.cpu_work = task.cpu_work;
  params.memory_bytes = task.memory_bytes;
  for (const wfcommons::TaskFile* file : task.outputs()) {
    params.outputs.emplace_back(file->name, file->size_bytes);
  }
  for (const wfcommons::TaskFile* file : task.inputs()) {
    params.inputs.push_back(file->name);
  }
  params.workdir = workdir;
  return params;
}

ExecutionPlan build_plan(const wfcommons::Workflow& workflow, const std::string& workdir) {
  const std::vector<std::string> problems = workflow.validate();
  if (!problems.empty()) {
    throw std::invalid_argument("build_plan: invalid workflow: " + problems.front());
  }

  PlanBuilder builder(workflow.name());
  builder.set_external_inputs(workflow.external_inputs());
  builder.reserve(workflow.size(), workflow.edge_count());

  std::unordered_map<std::string_view, TaskId> flat_ids;
  flat_ids.reserve(workflow.size());
  const auto level_decomposition = wfcommons::levels(workflow);
  for (std::size_t level = 0; level < level_decomposition.size(); ++level) {
    for (const wfcommons::Task* task : level_decomposition[level]) {
      if (task->api_url.empty()) {
        throw std::invalid_argument("build_plan: task " + task->name +
                                    " has no api_url (run a translator first)");
      }
      const TaskId id =
          builder.add_task(static_cast<std::uint32_t>(level), task->name, task->api_url,
                           task->percent_cpu, task->cpu_work, task->memory_bytes, workdir);
      // Same file ordering to_task_params produced: outputs, then inputs,
      // each in declaration order.
      for (const wfcommons::TaskFile& file : task->files) {
        if (file.link == wfcommons::TaskFile::Link::kOutput) {
          builder.add_output(file.name, file.size_bytes);
        }
      }
      for (const wfcommons::TaskFile& file : task->files) {
        if (file.link == wfcommons::TaskFile::Link::kInput) {
          builder.add_input(file.name);
        }
      }
      flat_ids.emplace(task->name, id);
    }
  }

  // Second pass: resolve dependency edges to flat ids (validation above
  // guarantees every referenced name exists and the lists are symmetric).
  // Both directions are recorded from the task's own lists so the per-task
  // orderings match the IR exactly.
  for (const auto& level : level_decomposition) {
    for (const wfcommons::Task* task : level) {
      const TaskId id = flat_ids.at(task->name);
      for (const std::string& parent : task->parents) {
        builder.add_parent(id, flat_ids.at(parent));
      }
      for (const std::string& child : task->children) {
        builder.add_child(id, flat_ids.at(child));
      }
    }
  }
  return std::move(builder).build();
}

ExecutionPlan plan_from_phases(std::string workflow_name,
                               const std::vector<std::vector<PlannedTask>>& phases,
                               std::vector<wfcommons::TaskFile> external_inputs) {
  PlanBuilder builder(std::move(workflow_name));
  builder.set_external_inputs(std::move(external_inputs));
  for (std::size_t level = 0; level < phases.size(); ++level) {
    for (const PlannedTask& task : phases[level]) {
      builder.add_task(static_cast<std::uint32_t>(level), task.name, task.api_url,
                       task.params.percent_cpu, task.params.cpu_work,
                       task.params.memory_bytes, task.params.workdir);
      for (const auto& [file, size] : task.params.outputs) builder.add_output(file, size);
      for (const std::string& file : task.params.inputs) builder.add_input(file);
    }
  }
  TaskId id = 0;
  for (const auto& phase : phases) {
    for (const PlannedTask& task : phase) {
      for (std::size_t parent : task.parents) {
        builder.add_parent(id, static_cast<TaskId>(parent));
      }
      for (std::size_t child : task.children) {
        builder.add_child(id, static_cast<TaskId>(child));
      }
      ++id;
    }
  }
  builder.ensure_levels(phases.size());
  return std::move(builder).build();
}

double static_critical_path_seconds(const ExecutionPlan& plan) {
  // Ids are level-major, hence topological: every parent id is smaller than
  // its children's, so one forward pass is a valid longest-path DP.
  const std::size_t total = plan.task_count();
  std::vector<double> longest(total, 0.0);
  double best = 0.0;
  for (TaskId id = 0; id < total; ++id) {
    const double duration = plan.cpu_work(id) / std::max(plan.percent_cpu(id), 1e-9);
    double start = 0.0;
    for (const TaskId parent : plan.parents(id)) {
      start = std::max(start, longest[parent]);
    }
    longest[id] = start + duration;
    best = std::max(best, longest[id]);
  }
  return best;
}

}  // namespace wfs::core
