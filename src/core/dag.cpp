#include "core/dag.h"

#include <algorithm>
#include <stdexcept>

#include "wfcommons/analysis.h"

namespace wfs::core {

std::size_t ExecutionPlan::task_count() const noexcept {
  std::size_t total = 0;
  for (const auto& phase : phases) total += phase.size();
  return total;
}

std::size_t ExecutionPlan::widest_phase() const noexcept {
  std::size_t widest = 0;
  for (const auto& phase : phases) widest = std::max(widest, phase.size());
  return widest;
}

wfbench::TaskParams to_task_params(const wfcommons::Task& task, const std::string& workdir) {
  wfbench::TaskParams params;
  params.name = task.name;
  params.percent_cpu = task.percent_cpu;
  params.cpu_work = task.cpu_work;
  params.memory_bytes = task.memory_bytes;
  for (const wfcommons::TaskFile* file : task.outputs()) {
    params.outputs.emplace_back(file->name, file->size_bytes);
  }
  for (const wfcommons::TaskFile* file : task.inputs()) {
    params.inputs.push_back(file->name);
  }
  params.workdir = workdir;
  return params;
}

ExecutionPlan build_plan(const wfcommons::Workflow& workflow, const std::string& workdir) {
  const std::vector<std::string> problems = workflow.validate();
  if (!problems.empty()) {
    throw std::invalid_argument("build_plan: invalid workflow: " + problems.front());
  }
  ExecutionPlan plan;
  plan.workflow_name = workflow.name();
  plan.external_inputs = workflow.external_inputs();
  for (const auto& level : wfcommons::levels(workflow)) {
    std::vector<PlannedTask> phase;
    phase.reserve(level.size());
    for (const wfcommons::Task* task : level) {
      if (task->api_url.empty()) {
        throw std::invalid_argument("build_plan: task " + task->name +
                                    " has no api_url (run a translator first)");
      }
      phase.push_back(PlannedTask{task->name, task->api_url, to_task_params(*task, workdir)});
    }
    plan.phases.push_back(std::move(phase));
  }
  return plan;
}

}  // namespace wfs::core
