#include "core/dag.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>
#include <utility>

#include "wfcommons/analysis.h"

namespace wfs::core {

std::size_t ExecutionPlan::task_count() const noexcept {
  std::size_t total = 0;
  for (const auto& phase : phases) total += phase.size();
  return total;
}

std::size_t ExecutionPlan::widest_phase() const noexcept {
  std::size_t widest = 0;
  for (const auto& phase : phases) widest = std::max(widest, phase.size());
  return widest;
}

std::size_t ExecutionPlan::flat_id(std::size_t level, std::size_t index) const noexcept {
  std::size_t id = index;
  for (std::size_t l = 0; l < level && l < phases.size(); ++l) id += phases[l].size();
  return id;
}

const PlannedTask& ExecutionPlan::task(std::size_t flat_id) const {
  for (const auto& phase : phases) {
    if (flat_id < phase.size()) return phase[flat_id];
    flat_id -= phase.size();
  }
  throw std::out_of_range("ExecutionPlan::task: flat id out of range");
}

PlannedTask& ExecutionPlan::task(std::size_t flat_id) {
  return const_cast<PlannedTask&>(std::as_const(*this).task(flat_id));
}

std::vector<std::size_t> ExecutionPlan::indegrees() const {
  std::vector<std::size_t> degrees;
  degrees.reserve(task_count());
  for (const auto& phase : phases) {
    for (const PlannedTask& task : phase) degrees.push_back(task.parents.size());
  }
  return degrees;
}

wfbench::TaskParams to_task_params(const wfcommons::Task& task, const std::string& workdir) {
  wfbench::TaskParams params;
  params.name = task.name;
  params.percent_cpu = task.percent_cpu;
  params.cpu_work = task.cpu_work;
  params.memory_bytes = task.memory_bytes;
  for (const wfcommons::TaskFile* file : task.outputs()) {
    params.outputs.emplace_back(file->name, file->size_bytes);
  }
  for (const wfcommons::TaskFile* file : task.inputs()) {
    params.inputs.push_back(file->name);
  }
  params.workdir = workdir;
  return params;
}

ExecutionPlan build_plan(const wfcommons::Workflow& workflow, const std::string& workdir) {
  const std::vector<std::string> problems = workflow.validate();
  if (!problems.empty()) {
    throw std::invalid_argument("build_plan: invalid workflow: " + problems.front());
  }
  ExecutionPlan plan;
  plan.workflow_name = workflow.name();
  plan.external_inputs = workflow.external_inputs();

  std::unordered_map<std::string, std::size_t> flat_ids;
  std::size_t next_id = 0;
  const auto level_decomposition = wfcommons::levels(workflow);
  for (std::size_t level = 0; level < level_decomposition.size(); ++level) {
    std::vector<PlannedTask> phase;
    phase.reserve(level_decomposition[level].size());
    for (const wfcommons::Task* task : level_decomposition[level]) {
      if (task->api_url.empty()) {
        throw std::invalid_argument("build_plan: task " + task->name +
                                    " has no api_url (run a translator first)");
      }
      PlannedTask planned{task->name, task->api_url, to_task_params(*task, workdir),
                          level, {}, {}};
      flat_ids.emplace(task->name, next_id++);
      phase.push_back(std::move(planned));
    }
    plan.phases.push_back(std::move(phase));
  }

  // Second pass: resolve the dependency edges to flat ids (validation above
  // guarantees every parent/child name exists and the lists are symmetric).
  for (const auto& level : level_decomposition) {
    for (const wfcommons::Task* task : level) {
      PlannedTask& planned = plan.task(flat_ids.at(task->name));
      planned.parents.reserve(task->parents.size());
      for (const std::string& parent : task->parents) {
        planned.parents.push_back(flat_ids.at(parent));
      }
      planned.children.reserve(task->children.size());
      for (const std::string& child : task->children) {
        planned.children.push_back(flat_ids.at(child));
      }
    }
  }
  return plan;
}

}  // namespace wfs::core
