// Result rendering shared by the bench binaries: aligned tables of
// experiment cells plus serverless-vs-baseline deltas (the numbers behind
// the paper's "reduces CPU by 78.11% and memory by 73.92%" claim).
#pragma once

#include <string>
#include <vector>

#include "core/experiment.h"
#include "load/traffic.h"

namespace wfs::core {

/// Header line matching result_row's columns.
[[nodiscard]] std::string result_header();

/// One fixed-width row: paradigm, workflow, size, status, time, CPU%, mem,
/// power, energy, pods/cold-starts.
[[nodiscard]] std::string result_row(const ExperimentResult& result);

/// Full table with header.
[[nodiscard]] std::string result_table(const std::vector<ExperimentResult>& results);

/// One-line breakdown of where a run's overhead went: cold starts, retry
/// backoff, input-wait polling and activator queueing (always-available
/// counters — no trace needed).
[[nodiscard]] std::string overhead_summary(const ExperimentResult& result);

/// ASCII makespan attribution: the observed critical path's segment
/// breakdown (sorted, with bars), the static DAG lower bound, and windowed
/// task-wall p99s so attribution-over-time is visible under load.
[[nodiscard]] std::string profile_summary(const obs::RunProfile& profile);
/// Convenience overload for experiment cells.
[[nodiscard]] std::string profile_summary(const ExperimentResult& result);

/// Relative change of `candidate` vs `baseline` per metric, as the paper
/// reports: negative = the candidate uses less.
struct MetricDeltas {
  double execution_time_pct = 0.0;
  double cpu_pct = 0.0;
  double memory_pct = 0.0;
  double power_pct = 0.0;
  double energy_pct = 0.0;
};
[[nodiscard]] MetricDeltas compare(const ExperimentResult& candidate,
                                   const ExperimentResult& baseline);
[[nodiscard]] std::string delta_row(const std::string& label, const MetricDeltas& deltas);

/// Renders a registry snapshot for terminals: counter/gauge totals plus,
/// for up to `max_histograms` of the busiest histogram points, a populated-
/// bucket bar chart (via metrics::bar_chart) with p50/p95/p99/p999
/// estimates. Empty string for an empty snapshot.
[[nodiscard]] std::string metrics_report(const metrics::MetricsSnapshot& snapshot,
                                         std::size_t max_histograms = 4);

/// Multi-tenant traffic window rendering: offered vs goodput, Jain fairness
/// and starvation up top, then one aligned row per tenant (submitted /
/// completed / rejected / makespan percentiles / goodput).
[[nodiscard]] std::string tenancy_summary(const load::TrafficResult& result);

}  // namespace wfs::core
