// Experiment result persistence — the artifact's `experiments/results/`
// directory analogue: every run can be serialized to a self-describing JSON
// document (identity, outcome, aggregates, and the full sampled series) and
// loaded back for later analysis without re-running the simulation.
#pragma once

#include <string>

#include "core/experiment.h"
#include "json/value.h"

namespace wfs::core {

/// Full serialization: config identity, outcome, metric summaries, platform
/// counters, and the four sampled series.
[[nodiscard]] json::Value result_to_json(const ExperimentResult& result);

/// Inverse of result_to_json. Fields absent from the document keep their
/// defaults; malformed documents throw std::invalid_argument.
[[nodiscard]] ExperimentResult result_from_json(const json::Value& document);

/// Convenience text forms.
[[nodiscard]] std::string write_result(const ExperimentResult& result);
[[nodiscard]] ExperimentResult parse_result(const std::string& text);

/// Writes the result to `path` (pretty JSON). Returns false on I/O error.
bool save_result(const ExperimentResult& result, const std::string& path);

/// Reads a result previously written by save_result. Throws on missing
/// file or malformed content.
[[nodiscard]] ExperimentResult load_result(const std::string& path);

}  // namespace wfs::core
