// The serverless workflow manager (the paper's §III-C contribution).
//
// Behaviourally faithful to the prototype:
//  * input: a translated workflow (JSON or IR) whose tasks carry api_urls;
//  * a synthetic header function opens and a tail function closes the run;
//  * execution proceeds phase by phase over the DAG's levels: every
//    function of a phase is invoked simultaneously via HTTP POST to its
//    endpoint;
//  * before invoking a function the WFM checks its input files exist on the
//    shared drive (polling briefly if not — outputs of the previous phase
//    may still be in flight);
//  * a configurable 1-second delay separates consecutive phases.
// Works against ANY platform bound on the router — Knative or the local
// container runtime — exactly the portability claim of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "core/dag.h"
#include "net/router.h"
#include "sim/simulation.h"
#include "storage/data_store.h"
#include "wfcommons/workflow.h"

namespace wfs::core {

struct WfmConfig {
  /// Delay inserted between phases (paper: 1 second).
  sim::SimTime phase_delay = sim::kSecond;
  /// Check input-file availability on the shared drive before dispatch.
  bool check_inputs = true;
  /// Poll cadence / budget while waiting for inputs to appear.
  sim::SimTime input_poll_interval = 500 * sim::kMillisecond;
  int max_input_polls = 600;
  /// Send the synthetic header/tail functions.
  bool add_header_tail = true;
  /// Shared-drive directory passed as "workdir" in every request.
  std::string workdir = "/shared/wfbench";
  /// Stage the workflow's external input files before phase 0.
  bool stage_external_inputs = true;
  /// Re-send a failed invocation up to this many times before recording the
  /// task as failed (0 = the paper's prototype behaviour: no retries).
  /// Retries make the WFM robust to transient platform faults — pod churn,
  /// 503s during scale-down — without any platform cooperation.
  int task_retries = 0;
  /// Delay before each retry.
  sim::SimTime retry_backoff = 2 * sim::kSecond;
};

struct TaskOutcome {
  std::string name;
  bool ok = false;
  int http_status = 0;
  double started_seconds = 0.0;  // request sent (run-relative)
  double runtime_seconds = 0.0;  // service-reported
  double wall_seconds = 0.0;     // request round-trip
  std::size_t phase = 0;
  std::string error;
};

struct PhaseOutcome {
  std::size_t index = 0;
  std::size_t tasks = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
};

struct WorkflowRunResult {
  std::string workflow_name;
  bool completed = false;          // all phases executed (possibly with failures)
  std::size_t tasks_total = 0;
  std::size_t tasks_failed = 0;
  std::size_t task_retries = 0;    // re-sent invocations (fault tolerance)
  std::size_t input_wait_timeouts = 0;
  double makespan_seconds = 0.0;   // header start -> tail response
  std::vector<PhaseOutcome> phases;
  std::vector<TaskOutcome> tasks;

  [[nodiscard]] bool ok() const noexcept { return completed && tasks_failed == 0; }
};

class WorkflowManager {
 public:
  using CompletionCallback = std::function<void(WorkflowRunResult)>;

  WorkflowManager(sim::Simulation& sim, net::Router& router, storage::DataStore& fs,
                  WfmConfig config = {});

  /// Runs a translated workflow asynchronously; `on_complete` fires once
  /// when the tail finishes (or the run aborts). One run at a time.
  void run(const wfcommons::Workflow& workflow, CompletionCallback on_complete);

  /// Same, from a pre-built plan.
  void run(ExecutionPlan plan, CompletionCallback on_complete);

  [[nodiscard]] bool busy() const noexcept { return active_; }
  [[nodiscard]] const WfmConfig& config() const noexcept { return config_; }

 private:
  struct RunState;

  void start_phase(std::shared_ptr<RunState> state, std::size_t phase_index);
  void dispatch_task(std::shared_ptr<RunState> state, std::size_t phase_index,
                     std::size_t task_index, int polls_left);
  void send_request(std::shared_ptr<RunState> state, std::size_t phase_index,
                    std::size_t task_index, int retries_left);
  void task_finished(std::shared_ptr<RunState> state, std::size_t phase_index,
                     const TaskOutcome& outcome);
  void finish_run(std::shared_ptr<RunState> state);
  void send_marker(std::shared_ptr<RunState> state, const std::string& suffix,
                   std::function<void()> next);

  sim::Simulation& sim_;
  net::Router& router_;
  storage::DataStore& fs_;
  WfmConfig config_;
  bool active_ = false;
};

}  // namespace wfs::core
