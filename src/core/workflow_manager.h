// The serverless workflow manager (the paper's §III-C contribution).
//
// Behaviourally faithful to the prototype, generalised into a ready-set
// dispatch engine with two scheduling modes:
//  * input: a translated workflow (JSON or IR) whose tasks carry api_urls;
//  * a synthetic header function opens and a tail function closes each run;
//  * phase-barrier mode (paper default): execution proceeds level by level
//    over the DAG — every function of a level is invoked simultaneously via
//    HTTP POST, the next level starts only after every response arrived plus
//    a fixed delay (paper: 1 second);
//  * dependency-driven mode (extension): every task carries a pending-parent
//    counter and is dispatched the moment its last DAG parent finished, with
//    a per-task dispatch delay — imbalanced levels no longer serialise the
//    run behind their slowest task;
//  * before invoking a function the WFM checks its input files exist on the
//    shared drive (polling briefly if not — parent outputs may still be in
//    flight).
// Both modes run through ONE dispatch loop: the barrier is expressed as a
// ready-set whose edges connect consecutive non-empty levels completely.
//
// A manager handles any number of concurrent runs; run() returns a RunHandle
// (run id + done()/cancel()) and internal state lives in a run table keyed
// by id. Works against ANY platform bound on the router — Knative or the
// local container runtime — exactly the portability claim of the paper.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "core/dag.h"
#include "net/router.h"
#include "obs/profile.h"
#include "obs/trace_recorder.h"
#include "sim/context.h"
#include "storage/data_store.h"
#include "wfcommons/workflow.h"

namespace wfs::metrics {
class MetricsRegistry;
class Counter;
}  // namespace wfs::metrics

namespace wfs::core {

namespace detail {
struct WfmRunState;  // the per-run record in the manager's run table
}

/// How the WFM decides when a task may be dispatched.
enum class SchedulingMode {
  kPhaseBarrier,      // paper §III-C: lockstep DAG levels + inter-phase delay
  kDependencyDriven,  // ready-set: dispatch when the last parent finished
};

[[nodiscard]] std::string_view to_string(SchedulingMode mode) noexcept;
/// Accepts "barrier"/"phase-barrier" and "depdriven"/"dependency-driven"/
/// "ready". Throws std::invalid_argument otherwise.
[[nodiscard]] SchedulingMode parse_scheduling_mode(std::string_view text);

struct WfmConfig {
  /// Task dispatch policy (see SchedulingMode).
  SchedulingMode scheduling = SchedulingMode::kPhaseBarrier;
  /// Phase-barrier mode: delay inserted between levels (paper: 1 second).
  sim::SimTime phase_delay = sim::kSecond;
  /// Dependency-driven mode: per-task delay between a task becoming ready
  /// (last parent finished) and its dispatch.
  sim::SimTime dispatch_delay = 0;
  /// Check input-file availability on the shared drive before dispatch.
  bool check_inputs = true;
  /// Poll cadence / budget while waiting for inputs to appear.
  sim::SimTime input_poll_interval = 500 * sim::kMillisecond;
  int max_input_polls = 600;
  /// When a task's inputs are missing AND one of its DAG parents already
  /// failed, fail the task immediately with an upstream-failure outcome
  /// instead of burning the full input-poll budget on files that will never
  /// appear. Disable to keep the pure poll path (genuinely-late files).
  bool fail_fast_on_upstream_failure = true;
  /// Send the synthetic header/tail functions.
  bool add_header_tail = true;
  /// Shared-drive directory passed as "workdir" in every request.
  std::string workdir = "/shared/wfbench";
  /// Stage the workflow's external input files before phase 0.
  bool stage_external_inputs = true;
  /// Re-send a failed invocation up to this many times before recording the
  /// task as failed (0 = the paper's prototype behaviour: no retries).
  /// Retries make the WFM robust to transient platform faults — pod churn,
  /// 503s during scale-down — without any platform cooperation.
  int task_retries = 0;
  /// Delay before each retry; a platform Retry-After hint
  /// (net::HttpResponse::retry_after_ms) overrides it per response.
  sim::SimTime retry_backoff = 2 * sim::kSecond;
  /// Tenant label stamped on every request of the run (multi-tenant
  /// platforms key admission control on it). Empty — the default — sends
  /// the paper's exact request bodies.
  std::string tenant;
};

struct TaskOutcome {
  std::string name;
  bool ok = false;
  int http_status = 0;
  double started_seconds = 0.0;  // FIRST attempt sent (run-relative)
  double runtime_seconds = 0.0;  // service-reported (final attempt)
  double wall_seconds = 0.0;     // first request sent -> final response,
                                 // covering every attempt and backoff
  std::size_t phase = 0;         // DAG level of the task
  int attempts = 0;              // invocations sent (retries + 1; 0 = never sent)
  double input_wait_seconds = 0.0;  // spent polling the shared drive for inputs
  double retry_wait_seconds = 0.0;  // spent in retry backoff between attempts
  std::string error;

  // Profiler timeline (run-relative instants + server-reported segments,
  // summed across attempts). gated_by is the plan id whose completion opened
  // this task's gate — the observed critical-path edge; -1 = ready at start.
  std::int64_t task_id = -1;
  std::int64_t gated_by = -1;
  double released_seconds = 0.0;    // gate opened
  double dispatched_seconds = 0.0;  // first dispatch (input checks begin)
  double finished_seconds = 0.0;    // final response arrived
  double queue_seconds = 0.0;       // platform/in-process buffering
  double cold_start_seconds = 0.0;  // buffering overlapping a pod boot
  double transfer_seconds = 0.0;    // service-side reads + writes
  double compute_seconds = 0.0;     // service-side stress phase
};

/// Level-attributed execution stats. Under phase-barrier scheduling a level
/// IS a lockstep phase; under dependency-driven scheduling levels overlap,
/// so `wall_seconds` spans first dispatch to last completion of the level's
/// tasks (reports render identically either way).
struct PhaseOutcome {
  std::size_t index = 0;  // DAG level
  std::size_t tasks = 0;
  std::size_t failed = 0;
  double wall_seconds = 0.0;
};

/// The header marker's round trip (run-relative instants plus the
/// server-reported segments). The WFM releases no task until the header
/// response returns, so on a fresh deployment this round trip carries the
/// first cold start — the profiler turns it into the leading node of the
/// observed critical path instead of unexplained head-gap overhead.
struct MarkerOutcome {
  bool sent = false;
  double sent_seconds = 0.0;
  double finished_seconds = 0.0;
  double queue_seconds = 0.0;
  double cold_start_seconds = 0.0;
  double transfer_seconds = 0.0;
  double compute_seconds = 0.0;
};

struct WorkflowRunResult {
  std::uint64_t run_id = 0;
  std::string workflow_name;
  SchedulingMode scheduling = SchedulingMode::kPhaseBarrier;
  bool completed = false;          // all tasks executed (possibly with failures)
  bool cancelled = false;          // aborted via RunHandle::cancel()
  std::size_t tasks_total = 0;
  std::size_t tasks_failed = 0;
  std::size_t task_retries = 0;    // re-sent invocations (fault tolerance)
  std::size_t input_wait_timeouts = 0;
  /// Tasks failed fast because a DAG parent finished unsuccessfully
  /// (WfmConfig::fail_fast_on_upstream_failure).
  std::size_t upstream_failures = 0;
  double input_wait_seconds = 0.0;  // total across tasks (overhead attribution)
  double retry_wait_seconds = 0.0;  // total backoff time across tasks
  double makespan_seconds = 0.0;   // header start -> tail response
  std::vector<PhaseOutcome> phases;
  std::vector<TaskOutcome> tasks;
  MarkerOutcome header;
  /// Always-on makespan attribution (valid on completed runs): the observed
  /// critical path and its segment breakdown. See obs/profile.h.
  obs::RunProfile profile;

  [[nodiscard]] bool ok() const noexcept { return completed && tasks_failed == 0; }
};

/// Lightweight, copyable reference to a run in a WorkflowManager's run
/// table. Valid to query after the run (or even the manager) is gone.
class RunHandle {
 public:
  RunHandle() = default;

  /// Monotonic per-manager run id (0 = default-constructed, invalid).
  [[nodiscard]] std::uint64_t id() const noexcept { return id_; }
  [[nodiscard]] bool valid() const noexcept { return id_ != 0; }
  /// True once the completion callback fired (or the run was cancelled, or
  /// its manager was destroyed).
  [[nodiscard]] bool done() const noexcept;
  /// Aborts the run: pending dispatches are suppressed, in-flight responses
  /// are dropped, and the completion callback fires immediately with
  /// completed=false / cancelled=true. Returns false when the run already
  /// finished (or the handle is invalid).
  bool cancel();

 private:
  friend class WorkflowManager;
  RunHandle(std::uint64_t id, std::weak_ptr<detail::WfmRunState> state)
      : id_(id), state_(std::move(state)) {}

  std::uint64_t id_ = 0;
  std::weak_ptr<detail::WfmRunState> state_;
};

class WorkflowManager {
 public:
  using CompletionCallback = std::function<void(WorkflowRunResult)>;

  WorkflowManager(sim::Context& sim, net::Router& router, storage::DataStore& fs,
                  WfmConfig config = {});
  ~WorkflowManager();

  /// Starts a translated workflow asynchronously; `on_complete` fires once
  /// when the tail finishes (or the run aborts). Any number of runs may be
  /// active concurrently. `config` overrides the manager's default WfmConfig
  /// for this run only (campaigns vary phase_delay/task_retries per run
  /// without rebuilding the manager).
  RunHandle run(const wfcommons::Workflow& workflow, CompletionCallback on_complete,
                std::optional<WfmConfig> config = std::nullopt);

  /// Same, from a pre-built plan.
  RunHandle run(ExecutionPlan plan, CompletionCallback on_complete,
                std::optional<WfmConfig> config = std::nullopt);

  /// Number of runs currently in the run table.
  [[nodiscard]] std::size_t active_runs() const noexcept { return runs_.size(); }

  [[nodiscard]] const WfmConfig& config() const noexcept { return config_; }

  /// Attaches a shared trace recorder; runs started afterwards emit
  /// per-task attempt spans into it. nullptr (the default) disables.
  void set_trace(obs::TraceRecorder* trace) noexcept { trace_ = trace; }

  /// Attaches a metrics registry: wfm_task_attempts_total,
  /// wfm_task_retries_total and wfm_input_wait_seconds_total are
  /// pre-registered here (so zero-valued families still show up in the
  /// exposition) and updated across all runs. nullptr disables.
  void set_metrics(metrics::MetricsRegistry* registry);

 private:
  friend class RunHandle;  // cancel() drives cancel_run()

  using StatePtr = std::shared_ptr<detail::WfmRunState>;

  /// Per-task attempt bookkeeping threaded through the retry loop, so the
  /// final TaskOutcome can attribute time across every attempt.
  struct AttemptContext {
    sim::SimTime first_sent_at = -1;
    int attempts = 0;
    double retry_wait_seconds = 0.0;
    /// Server-Timing accumulated across attempts (failed ones included —
    /// their buffering and transfer time was really spent).
    net::ServerTiming timing;
  };

  void start_run(StatePtr state);
  void prime_gates(const StatePtr& state);
  /// Dispatches every id queued in the run's batched ready set. Reentrant
  /// calls (a release finishing a task synchronously and unlocking more ids)
  /// extend the queue the outermost frame is draining.
  void drain_ready(const StatePtr& state);
  void release_task(StatePtr state, TaskId task_id, sim::SimTime delay);
  void dispatch_task(StatePtr state, TaskId task_id, int polls_left);
  void send_request(StatePtr state, TaskId task_id, int retries_left,
                    AttemptContext context);
  void task_finished(StatePtr state, TaskId task_id, TaskOutcome outcome);
  void finish_run(StatePtr state);
  void record_level_outcomes(const StatePtr& state);
  void cancel_run(const StatePtr& state);
  void deliver(const StatePtr& state);
  void send_marker(StatePtr state, const std::string& suffix, std::function<void()> next);

  sim::Context& sim_;
  net::Router& router_;
  storage::DataStore& fs_;
  WfmConfig config_;
  obs::TraceRecorder* trace_ = nullptr;
  metrics::Counter* attempts_metric_ = nullptr;
  metrics::Counter* retries_metric_ = nullptr;
  metrics::Counter* input_wait_metric_ = nullptr;
  std::uint64_t next_run_id_ = 1;
  std::unordered_map<std::uint64_t, StatePtr> runs_;
};

}  // namespace wfs::core
