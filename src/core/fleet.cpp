#include "core/fleet.h"

#include <algorithm>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>

#include "cluster/cluster.h"
#include "containers/runtime.h"
#include "faas/platform.h"
#include "metrics/sampler.h"
#include "net/router.h"
#include "sim/sharded.h"
#include "sim/simulation.h"
#include "storage/cached_store.h"
#include "storage/shared_fs.h"
#include "storage/sharded_store.h"
#include "support/log.h"
#include "support/thread_pool.h"
#include "wfcommons/generator.h"
#include "wfcommons/translators/knative.h"
#include "wfcommons/translators/local_container.h"

namespace wfs::core {

FleetResult run_fleet(const FleetConfig& config) {
  if (config.items.empty()) throw std::invalid_argument("run_fleet: no workflows");
  const ParadigmInfo& paradigm = paradigm_info(config.paradigm);

  // Same engine selection as ExperimentRunner::run — the single-queue
  // Simulation at sim_shards == 1, the lookahead engine (all substrates on
  // shard 0) above that. Fleet results are identical either way.
  std::unique_ptr<sim::Simulation> plain_sim;
  std::unique_ptr<sim::ShardedSimulation> sharded_sim;
  sim::Context* sim_context = nullptr;
  if (config.sim_shards > 1) {
    sharded_sim = std::make_unique<sim::ShardedSimulation>(config.sim_shards);
    sim_context = &sharded_sim->shard(0);
  } else {
    plain_sim = std::make_unique<sim::Simulation>();
    sim_context = plain_sim.get();
  }
  sim::Context& sim = *sim_context;
  cluster::Cluster cluster = cluster::Cluster::paper_testbed(sim);
  // Same data-plane assembly as ExperimentRunner::run: plain shared fs by
  // default, the sharded tier at storage_nodes > 0, optionally wrapped in
  // the node-local cache (which p2p requires).
  std::unique_ptr<storage::DataStore> store;
  storage::ShardedObjectStore* sharded_store = nullptr;
  if (config.storage_nodes > 0) {
    storage::ShardedStoreConfig sharded_config;
    sharded_config.num_nodes = config.storage_nodes;
    sharded_config.replication_factor = config.replication_factor;
    auto sharded = std::make_unique<storage::ShardedObjectStore>(sim, sharded_config);
    sharded_store = sharded.get();
    store = std::move(sharded);
  } else {
    store = std::make_unique<storage::SharedFilesystem>(sim);
  }
  std::unique_ptr<storage::CachedStore> cache;
  if (config.data_cache_mb_per_node > 0) {
    storage::CacheConfig cache_config;
    cache_config.capacity_bytes = config.data_cache_mb_per_node << 20;
    cache_config.p2p_enabled = config.p2p_transfer;
    cache = std::make_unique<storage::CachedStore>(sim, *store, cache_config);
  }
  storage::DataStore& fs = cache ? *cache : *store;
  net::Router router(sim, net::NetworkConfig{}, config.items.front().seed);

  // One shared platform deployment for the whole fleet.
  std::unique_ptr<faas::KnativePlatform> knative;
  std::unique_ptr<containers::LocalContainerRuntime> local;
  std::string endpoint;
  if (paradigm.serverless) {
    faas::KnativeServiceSpec spec = knative_spec_for(config.paradigm, config.shape);
    spec.admission.tenant_inflight_limit = config.tenant_quota;
    spec.admission.tenant_queue_limit = config.tenant_queue_limit;
    spec.admission.fair_dequeue = config.fair_dequeue;
    knative = std::make_unique<faas::KnativePlatform>(sim, cluster, fs, router, spec);
    if (cache) knative->set_data_cache(cache.get());
    knative->deploy();
    endpoint = "http://" + spec.authority + "/wfbench";
  } else {
    containers::LocalRuntimeConfig lconfig = local_config_for(config.paradigm, config.shape);
    local = std::make_unique<containers::LocalContainerRuntime>(sim, cluster, fs, router,
                                                                lconfig);
    local->start();
    endpoint = "http://" + lconfig.authority + "/wfbench";
  }

  // Generate + translate every workflow up front.
  wfcommons::WorkflowGenerator generator;
  std::vector<wfcommons::Workflow> workflows;
  for (const FleetItem& item : config.items) {
    wfcommons::GenerateOptions options;
    options.num_tasks = item.num_tasks;
    options.seed = item.seed;
    options.cpu_work = config.cpu_work;
    wfcommons::Workflow wf = wfcommons::make_recipe(item.recipe)->generate(options);
    for (wfcommons::Task& task : wf.tasks()) task.api_url = endpoint;
    workflows.push_back(std::move(wf));
  }

  metrics::Sampler sampler(sim);
  sampler.add_probe("cpu_pct", [&cluster] { return cluster.cpu_fraction() * 100.0; });
  sampler.add_probe("mem_gib", [&cluster] {
    return static_cast<double>(cluster.resident_memory()) / (1024.0 * 1024.0 * 1024.0);
  });
  sampler.add_probe("power_w", [&cluster] { return cluster.power_watts(); });
  sampler.sample_now();
  sampler.start();

  FleetResult result;
  result.runs.resize(workflows.size());
  // One manager carries the whole fleet: its run table keys every active
  // workflow by run id, so concurrent mode is just N back-to-back run()
  // calls.
  WorkflowManager wfm(sim, router, fs, config.wfm);
  std::size_t remaining = workflows.size();
  const auto record = [&](std::size_t index, WorkflowRunResult run) {
    result.runs[index] = std::move(run);
    if (--remaining == 0) {
      sampler.sample_now();
      sampler.stop();
    }
  };

  // Owner of the sequential launch chain; declared here (not in the else
  // branch) so it stays alive through run_until() — the chain itself only
  // holds a weak_ptr, because a shared_ptr self-capture would make the
  // function own itself and leak.
  std::shared_ptr<std::function<void(std::size_t)>> launch;
  // Per-run WfmConfig only when an item carries a tenant label; the
  // std::nullopt path is the exact pre-tenancy code.
  const auto run_config = [&config](std::size_t index) -> std::optional<WfmConfig> {
    if (config.items[index].tenant.empty()) return std::nullopt;
    WfmConfig wfm_config = config.wfm;
    wfm_config.tenant = config.items[index].tenant;
    return wfm_config;
  };
  if (config.concurrent) {
    for (std::size_t i = 0; i < workflows.size(); ++i) {
      wfm.run(workflows[i],
              [&record, i](WorkflowRunResult run) { record(i, std::move(run)); },
              run_config(i));
    }
  } else {
    // Chained launch: index i+1 starts from i's completion callback.
    launch = std::make_shared<std::function<void(std::size_t)>>();
    *launch = [&, weak = std::weak_ptr(launch)](std::size_t index) {
      wfm.run(workflows[index], [&, weak, index](WorkflowRunResult run) {
        record(index, std::move(run));
        if (index + 1 < workflows.size()) {
          if (const auto next = weak.lock()) (*next)(index + 1);
        }
      }, run_config(index));
    };
    (*launch)(0);
  }

  const sim::SimTime deadline = sim::from_seconds(config.deadline_seconds);
  if (sharded_sim) {
    sim::SimTime lookahead = std::min(router.min_latency(), fs.min_op_latency());
    if (knative) lookahead = std::min(lookahead, knative->spec().min_edge_latency());
    sharded_sim->set_lookahead(std::max<sim::SimTime>(1, lookahead));
    sharded_sim->run_until(deadline);
  } else {
    plain_sim->run_until(deadline);
  }

  result.completed = remaining == 0;
  for (const WorkflowRunResult& run : result.runs) {
    result.workflows_failed += run.ok() ? 0 : 1;
  }
  result.wall_seconds =
      sim::to_seconds(sampler.series("cpu_pct").samples().back().time);
  result.cpu_percent = metrics::summarize(sampler.series("cpu_pct"));
  result.memory_gib = metrics::summarize(sampler.series("mem_gib"));
  result.power_watts = metrics::summarize(sampler.series("power_w"));
  result.energy_joules = sampler.series("power_w").integral();
  if (knative) {
    result.cold_starts = knative->stats().pods_created;
    knative->shutdown();
  }
  if (local) local->shutdown();
  if (cache) {
    const storage::CacheStats cache_stats = cache->stats();
    result.cache_hits = cache_stats.hits;
    result.p2p_transfers = cache_stats.p2p_transfers;
  }
  if (sharded_store != nullptr) {
    result.storage_repair_objects = sharded_store->repaired_objects();
  }
  return result;
}

std::vector<FleetResult> run_fleets(const std::vector<FleetConfig>& configs,
                                    std::size_t jobs, const FleetProgress& progress) {
  const std::size_t workers = std::min(
      jobs == 0 ? support::ThreadPool::default_workers() : jobs,
      std::max<std::size_t>(1, configs.size()));

  std::vector<FleetResult> results;
  if (workers <= 1) {
    results.reserve(configs.size());
    for (std::size_t i = 0; i < configs.size(); ++i) {
      results.push_back(run_fleet(configs[i]));
      if (progress) progress(i, results.back());
    }
    return results;
  }

  results.resize(configs.size());
  std::mutex progress_mutex;
  support::ThreadPool pool(workers);
  for (std::size_t i = 0; i < configs.size(); ++i) {
    pool.submit([&results, &configs, &progress, &progress_mutex, i] {
      FleetResult result;
      try {
        result = run_fleet(configs[i]);
      } catch (const std::exception&) {
        result.completed = false;  // surfaced as !ok(); the sweep goes on
      }
      results[i] = std::move(result);
      if (progress) {
        const std::scoped_lock lock(progress_mutex);
        progress(i, results[i]);
      }
    });
  }
  pool.wait_idle();
  return results;
}

}  // namespace wfs::core
