// Campaign: a programmatic sweep over (paradigm x family x size) cells —
// the C++ analogue of the artifact's run_all_wfbench.sh / run_all_wfbench_
// local.sh drivers, with results kept in memory and exportable as CSV for
// downstream analysis (the paper's Jupyter stage).
//
// Cells are independent simulations, so the campaign runs them on a
// support::ThreadPool (`CampaignSpec::jobs` workers). Results are collected
// in deterministic cell order: summary_csv() and results() are byte-for-byte
// identical whatever the worker count; only the progress callback observes
// completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace wfs::core {

struct CampaignSpec {
  std::vector<Paradigm> paradigms;
  std::vector<std::string> recipes;
  std::vector<std::size_t> sizes;
  std::uint64_t seed = 1;
  /// Extra sweep dimensions. Empty (the default) means one value taken from
  /// `seed` / `wfm.scheduling`; non-empty multiplies the cell grid.
  std::vector<std::uint64_t> seeds;
  std::vector<SchedulingMode> schedulings;
  double cpu_work = 100.0;
  DataBackend backend = DataBackend::kSharedDrive;
  /// Node-local data cache (ExperimentConfig::data_cache_mb_per_node /
  /// cache_aware_placement). 0 = off, the exact paper data path.
  std::uint64_t data_cache_mb_per_node = 0;
  bool cache_aware_placement = false;
  /// Sharded data plane (ExperimentConfig::storage_nodes etc.). 0 = the
  /// single shared store, the exact paper data path.
  std::size_t storage_nodes = 0;
  std::size_t replication_factor = 2;
  bool p2p_transfer = false;
  /// Simulation-engine shards per cell (ExperimentConfig::sim_shards).
  /// summary_csv()/results() are byte-identical at every value.
  std::size_t sim_shards = 1;
  /// Per-tenant admission control (ExperimentConfig knobs of the same
  /// names). All defaults off — the exact single-tenant activator, with
  /// summary_csv() byte-identical to pre-tenancy campaigns.
  std::size_t tenant_quota = 0;
  std::size_t tenant_queue_limit = 0;
  bool fair_dequeue = false;
  WfmConfig wfm;
  /// Worker threads for run(): 0 = hardware_concurrency, 1 = fully
  /// sequential (the exact pre-pool code path).
  std::size_t jobs = 0;
  /// Per-cell structured metrics (ExperimentConfig::collect_metrics);
  /// merged_metrics() aggregates the per-cell snapshots.
  bool collect_metrics = true;
  /// Append critical-path attribution columns (cp_length_seconds,
  /// cp_coldstart_pct, cp_queue_pct, cp_transfer_pct, cp_compute_pct) to
  /// summary_csv(). Off (the default) keeps the CSV byte-identical to
  /// profile-unaware consumers; the per-run RunProfile is computed either
  /// way.
  bool profile = false;

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return paradigms.size() * recipes.size() * sizes.size() *
           std::max<std::size_t>(1, seeds.size()) *
           std::max<std::size_t>(1, schedulings.size());
  }
};

/// The paper's Table I designs, ready to run.
[[nodiscard]] CampaignSpec paper_fine_grained_campaign();   // 98 cells
[[nodiscard]] CampaignSpec paper_coarse_grained_campaign(); // 42 cells

/// Merges the per-cell registry snapshots of a result set into one
/// (metrics::merge_into semantics). Cells without metrics contribute
/// nothing; the result is empty when none have any.
[[nodiscard]] metrics::MetricsSnapshot merged_metrics(
    const std::vector<ExperimentResult>& results);

class Campaign {
 public:
  using Progress = std::function<void(const ExperimentResult&)>;

  explicit Campaign(CampaignSpec spec) : spec_(std::move(spec)) {}

  /// Runs every cell (recipes outermost, paradigms innermost, matching the
  /// figures' facet layout; seed/scheduling sweeps wrap around that grid).
  /// `progress` fires exactly once per cell, serialized — but with jobs > 1
  /// in COMPLETION order, not cell order. The returned results are always
  /// in cell order.
  const std::vector<ExperimentResult>& run(const Progress& progress = {});

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<ExperimentResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] bool completed() const noexcept {
    return results_.size() == spec_.cell_count();
  }

  /// Cell lookup by config key. The optional seed / scheduling narrow the
  /// match for campaigns that sweep those dimensions; when the given keys
  /// are ambiguous (several cells differ only in an omitted dimension) the
  /// lookup returns nullptr rather than silently picking the first cell.
  /// nullptr also when the cell was not (yet) run.
  [[nodiscard]] const ExperimentResult* find(
      Paradigm paradigm, const std::string& recipe, std::size_t size,
      std::optional<std::uint64_t> seed = std::nullopt,
      std::optional<SchedulingMode> scheduling = std::nullopt) const;

  /// One CSV row per cell: identity, status, and the aggregate metrics the
  /// paper's analysis notebooks consume.
  [[nodiscard]] std::string summary_csv() const;

  /// Count of cells whose run did not conclude cleanly.
  [[nodiscard]] std::size_t failed_cells() const;

  /// One snapshot for the whole campaign: counters and histogram buckets
  /// summed across cells, gauges as per-cell maxima. Empty when the spec
  /// disabled metrics.
  [[nodiscard]] metrics::MetricsSnapshot merged_metrics() const {
    return core::merged_metrics(results_);
  }

 private:
  CampaignSpec spec_;
  std::vector<ExperimentResult> results_;
};

}  // namespace wfs::core
