// Campaign: a programmatic sweep over (paradigm x family x size) cells —
// the C++ analogue of the artifact's run_all_wfbench.sh / run_all_wfbench_
// local.sh drivers, with results kept in memory and exportable as CSV for
// downstream analysis (the paper's Jupyter stage).
#pragma once

#include <functional>
#include <string>
#include <vector>

#include "core/experiment.h"

namespace wfs::core {

struct CampaignSpec {
  std::vector<Paradigm> paradigms;
  std::vector<std::string> recipes;
  std::vector<std::size_t> sizes;
  std::uint64_t seed = 1;
  double cpu_work = 100.0;
  DataBackend backend = DataBackend::kSharedDrive;
  WfmConfig wfm;

  [[nodiscard]] std::size_t cell_count() const noexcept {
    return paradigms.size() * recipes.size() * sizes.size();
  }
};

/// The paper's Table I designs, ready to run.
[[nodiscard]] CampaignSpec paper_fine_grained_campaign();   // 98 cells
[[nodiscard]] CampaignSpec paper_coarse_grained_campaign(); // 42 cells

class Campaign {
 public:
  using Progress = std::function<void(const ExperimentResult&)>;

  explicit Campaign(CampaignSpec spec) : spec_(std::move(spec)) {}

  /// Runs every cell (recipes outermost, paradigms innermost, matching the
  /// figures' facet layout); `progress` fires after each cell.
  const std::vector<ExperimentResult>& run(const Progress& progress = {});

  [[nodiscard]] const CampaignSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::vector<ExperimentResult>& results() const noexcept {
    return results_;
  }
  [[nodiscard]] bool completed() const noexcept {
    return results_.size() == spec_.cell_count();
  }

  /// nullptr when the cell was not (yet) run.
  [[nodiscard]] const ExperimentResult* find(Paradigm paradigm, const std::string& recipe,
                                             std::size_t size) const;

  /// One CSV row per cell: identity, status, and the aggregate metrics the
  /// paper's analysis notebooks consume.
  [[nodiscard]] std::string summary_csv() const;

  /// Count of cells whose run did not conclude cleanly.
  [[nodiscard]] std::size_t failed_cells() const;

 private:
  CampaignSpec spec_;
  std::vector<ExperimentResult> results_;
};

}  // namespace wfs::core
