#include "json/value.h"

#include <stdexcept>

namespace wfs::json {

Object::Object(std::initializer_list<Entry> entries) {
  for (const auto& entry : entries) set(entry.first, entry.second);
}

Value& Object::set(std::string key, Value value) {
  if (Value* existing = find(key)) {
    *existing = std::move(value);
    return *existing;
  }
  entries_.emplace_back(std::move(key), std::move(value));
  return entries_.back().second;
}

const Value* Object::find(std::string_view key) const noexcept {
  for (const auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

Value* Object::find(std::string_view key) noexcept {
  for (auto& [k, v] : entries_) {
    if (k == key) return &v;
  }
  return nullptr;
}

const Value& Object::at(std::string_view key) const {
  if (const Value* v = find(key)) return *v;
  throw std::out_of_range("json::Object missing key: " + std::string(key));
}

Value& Object::at(std::string_view key) {
  if (Value* v = find(key)) return *v;
  throw std::out_of_range("json::Object missing key: " + std::string(key));
}

bool Object::erase(std::string_view key) {
  for (auto it = entries_.begin(); it != entries_.end(); ++it) {
    if (it->first == key) {
      entries_.erase(it);
      return true;
    }
  }
  return false;
}

double Value::as_double() const {
  if (is_int()) return static_cast<double>(as_int());
  return std::get<double>(data_);
}

std::int64_t Value::int_or(std::int64_t fallback) const noexcept {
  if (is_int()) return as_int();
  if (is_double()) return static_cast<std::int64_t>(std::get<double>(data_));
  return fallback;
}

double Value::double_or(double fallback) const noexcept {
  if (is_number()) return as_double();
  return fallback;
}

std::string Value::string_or(std::string fallback) const {
  if (is_string()) return as_string();
  return fallback;
}

bool Value::bool_or(bool fallback) const noexcept {
  if (is_bool()) return std::get<bool>(data_);
  return fallback;
}

const Value* Value::find(std::string_view key) const noexcept {
  if (!is_object()) return nullptr;
  return as_object().find(key);
}

bool Value::operator==(const Value& other) const {
  if (type() != other.type()) {
    // int 3 and double 3.0 compare equal — round-trips through text may
    // legitimately change representation.
    if (is_number() && other.is_number()) return as_double() == other.as_double();
    return false;
  }
  switch (type()) {
    case Type::kNull: return true;
    case Type::kBool: return as_bool() == other.as_bool();
    case Type::kInt: return as_int() == other.as_int();
    case Type::kDouble: return as_double() == other.as_double();
    case Type::kString: return as_string() == other.as_string();
    case Type::kArray: return as_array() == other.as_array();
    case Type::kObject: {
      const Object& a = as_object();
      const Object& b = other.as_object();
      if (a.size() != b.size()) return false;
      for (const auto& [k, v] : a) {
        const Value* bv = b.find(k);
        if (bv == nullptr || !(*bv == v)) return false;
      }
      return true;
    }
  }
  return false;
}

}  // namespace wfs::json
