// JSON document model.
//
// The framework exchanges workflow descriptions and HTTP bodies as JSON
// (exactly like the paper's WfCommons format and wfbench POST payloads), so
// this is a full, dependency-free JSON substrate. Objects preserve insertion
// order — WfCommons files are diffed/inspected by humans and key order
// stability keeps translator output deterministic.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <memory>
#include <string>
#include <string_view>
#include <utility>
#include <variant>
#include <vector>

namespace wfs::json {

class Value;

/// Insertion-ordered string->Value map with O(n) lookup (objects in workflow
/// documents are small; determinism matters more than asymptotics here).
class Object {
 public:
  using Entry = std::pair<std::string, Value>;

  Object() = default;
  Object(std::initializer_list<Entry> entries);

  /// Inserts or overwrites; insertion order is kept on overwrite.
  Value& set(std::string key, Value value);

  /// Returns nullptr when the key is absent.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;
  [[nodiscard]] Value* find(std::string_view key) noexcept;

  /// Returns the value or throws std::out_of_range.
  [[nodiscard]] const Value& at(std::string_view key) const;
  [[nodiscard]] Value& at(std::string_view key);

  [[nodiscard]] bool contains(std::string_view key) const noexcept { return find(key) != nullptr; }

  /// Removes a key if present; returns true when something was removed.
  bool erase(std::string_view key);

  [[nodiscard]] std::size_t size() const noexcept { return entries_.size(); }
  [[nodiscard]] bool empty() const noexcept { return entries_.empty(); }

  [[nodiscard]] auto begin() const noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() const noexcept { return entries_.end(); }
  [[nodiscard]] auto begin() noexcept { return entries_.begin(); }
  [[nodiscard]] auto end() noexcept { return entries_.end(); }

 private:
  std::vector<Entry> entries_;
};

using Array = std::vector<Value>;

/// A JSON value: null, bool, integer, double, string, array or object.
/// Integers are kept distinct from doubles so file sizes and counts survive
/// round-trips exactly.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() noexcept : data_(nullptr) {}
  Value(std::nullptr_t) noexcept : data_(nullptr) {}
  Value(bool b) noexcept : data_(b) {}
  Value(int i) noexcept : data_(static_cast<std::int64_t>(i)) {}
  Value(unsigned i) noexcept : data_(static_cast<std::int64_t>(i)) {}
  Value(std::int64_t i) noexcept : data_(i) {}
  Value(std::uint64_t i) noexcept : data_(static_cast<std::int64_t>(i)) {}
  Value(double d) noexcept : data_(d) {}
  Value(const char* s) : data_(std::string(s)) {}
  Value(std::string s) noexcept : data_(std::move(s)) {}
  Value(std::string_view s) : data_(std::string(s)) {}
  Value(Array a) noexcept : data_(std::move(a)) {}
  Value(Object o) noexcept : data_(std::move(o)) {}

  [[nodiscard]] Type type() const noexcept { return static_cast<Type>(data_.index()); }
  [[nodiscard]] bool is_null() const noexcept { return type() == Type::kNull; }
  [[nodiscard]] bool is_bool() const noexcept { return type() == Type::kBool; }
  [[nodiscard]] bool is_int() const noexcept { return type() == Type::kInt; }
  [[nodiscard]] bool is_double() const noexcept { return type() == Type::kDouble; }
  [[nodiscard]] bool is_number() const noexcept { return is_int() || is_double(); }
  [[nodiscard]] bool is_string() const noexcept { return type() == Type::kString; }
  [[nodiscard]] bool is_array() const noexcept { return type() == Type::kArray; }
  [[nodiscard]] bool is_object() const noexcept { return type() == Type::kObject; }

  // Checked accessors: throw std::bad_variant_access on type mismatch.
  [[nodiscard]] bool as_bool() const { return std::get<bool>(data_); }
  [[nodiscard]] std::int64_t as_int() const { return std::get<std::int64_t>(data_); }
  [[nodiscard]] const std::string& as_string() const { return std::get<std::string>(data_); }
  [[nodiscard]] const Array& as_array() const { return std::get<Array>(data_); }
  [[nodiscard]] Array& as_array() { return std::get<Array>(data_); }
  [[nodiscard]] const Object& as_object() const { return std::get<Object>(data_); }
  [[nodiscard]] Object& as_object() { return std::get<Object>(data_); }

  /// Numeric accessor accepting either int or double storage.
  [[nodiscard]] double as_double() const;

  // Lenient typed getters with defaults — the usual shape when reading
  // optional fields out of workflow JSON.
  [[nodiscard]] std::int64_t int_or(std::int64_t fallback) const noexcept;
  [[nodiscard]] double double_or(double fallback) const noexcept;
  [[nodiscard]] std::string string_or(std::string fallback) const;
  [[nodiscard]] bool bool_or(bool fallback) const noexcept;

  /// Object path lookup: returns nullptr when this is not an object or the
  /// key is missing.
  [[nodiscard]] const Value* find(std::string_view key) const noexcept;

  [[nodiscard]] bool operator==(const Value& other) const;

 private:
  std::variant<std::nullptr_t, bool, std::int64_t, double, std::string, Array, Object> data_;
};

}  // namespace wfs::json
