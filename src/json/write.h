// JSON serialization: compact and pretty (2-space indented) writers.
#pragma once

#include <string>

#include "json/value.h"

namespace wfs::json {

/// Serializes without any whitespace ({"a":1,"b":[2,3]}).
[[nodiscard]] std::string write_compact(const Value& value);

/// Serializes with newlines and `indent`-space nesting — the layout used for
/// workflow files on disk (diff-friendly, like WfCommons' output).
[[nodiscard]] std::string write_pretty(const Value& value, int indent = 2);

/// Escapes a raw string into a JSON string literal including quotes.
[[nodiscard]] std::string escape_string(std::string_view raw);

}  // namespace wfs::json
