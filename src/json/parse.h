// Recursive-descent JSON parser (RFC 8259) with position-tagged errors.
#pragma once

#include <stdexcept>
#include <string>
#include <string_view>

#include "json/value.h"

namespace wfs::json {

/// Thrown on malformed input; message includes 1-based line:column.
class ParseError : public std::runtime_error {
 public:
  ParseError(std::string message, std::size_t line, std::size_t column);

  [[nodiscard]] std::size_t line() const noexcept { return line_; }
  [[nodiscard]] std::size_t column() const noexcept { return column_; }

 private:
  std::size_t line_;
  std::size_t column_;
};

/// Parses a complete JSON document; trailing non-whitespace is an error.
/// Nesting depth is limited (default 256) to keep recursion bounded.
[[nodiscard]] Value parse(std::string_view text, std::size_t max_depth = 256);

/// Non-throwing variant: returns false and fills `error` on failure.
[[nodiscard]] bool try_parse(std::string_view text, Value& out, std::string& error);

}  // namespace wfs::json
