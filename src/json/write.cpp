#include "json/write.h"

#include <cmath>
#include "support/format.h"

namespace wfs::json {
namespace {

void append_escaped(std::string& out, std::string_view raw) {
  out.push_back('"');
  for (const char c : raw) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          out += wfs::support::format("\\u{:04x}", static_cast<unsigned char>(c));
        } else {
          out.push_back(c);
        }
    }
  }
  out.push_back('"');
}

void append_number(std::string& out, const Value& value) {
  if (value.is_int()) {
    out += std::to_string(value.as_int());
    return;
  }
  const double d = value.as_double();
  if (!std::isfinite(d)) {
    out += "null";  // JSON has no NaN/Inf; emit null rather than invalid text
    return;
  }
  // Shortest representation that round-trips a double.
  std::string text = wfs::support::format("{}", d);
  out += text;
}

void write_value(std::string& out, const Value& value, int indent, int depth) {
  const bool pretty = indent > 0;
  const auto newline_indent = [&](int d) {
    if (!pretty) return;
    out.push_back('\n');
    out.append(static_cast<std::size_t>(indent) * static_cast<std::size_t>(d), ' ');
  };
  switch (value.type()) {
    case Value::Type::kNull: out += "null"; return;
    case Value::Type::kBool: out += value.as_bool() ? "true" : "false"; return;
    case Value::Type::kInt:
    case Value::Type::kDouble: append_number(out, value); return;
    case Value::Type::kString: append_escaped(out, value.as_string()); return;
    case Value::Type::kArray: {
      const Array& array = value.as_array();
      if (array.empty()) {
        out += "[]";
        return;
      }
      out.push_back('[');
      for (std::size_t i = 0; i < array.size(); ++i) {
        if (i != 0) out.push_back(',');
        newline_indent(depth + 1);
        write_value(out, array[i], indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back(']');
      return;
    }
    case Value::Type::kObject: {
      const Object& object = value.as_object();
      if (object.empty()) {
        out += "{}";
        return;
      }
      out.push_back('{');
      bool first = true;
      for (const auto& [key, entry] : object) {
        if (!first) out.push_back(',');
        first = false;
        newline_indent(depth + 1);
        append_escaped(out, key);
        out.push_back(':');
        if (pretty) out.push_back(' ');
        write_value(out, entry, indent, depth + 1);
      }
      newline_indent(depth);
      out.push_back('}');
      return;
    }
  }
}

}  // namespace

std::string write_compact(const Value& value) {
  std::string out;
  write_value(out, value, 0, 0);
  return out;
}

std::string write_pretty(const Value& value, int indent) {
  std::string out;
  write_value(out, value, indent, 0);
  out.push_back('\n');
  return out;
}

std::string escape_string(std::string_view raw) {
  std::string out;
  append_escaped(out, raw);
  return out;
}

}  // namespace wfs::json
