#include "json/parse.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include "support/format.h"

namespace wfs::json {
namespace {

class Parser {
 public:
  Parser(std::string_view text, std::size_t max_depth) : text_(text), max_depth_(max_depth) {}

  Value parse_document() {
    skip_whitespace();
    Value value = parse_value(0);
    skip_whitespace();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return value;
  }

 private:
  [[noreturn]] void fail(std::string_view message) const {
    std::size_t line = 1;
    std::size_t column = 1;
    for (std::size_t i = 0; i < pos_ && i < text_.size(); ++i) {
      if (text_[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
    }
    throw ParseError(std::string(message), line, column);
  }

  [[nodiscard]] bool at_end() const noexcept { return pos_ >= text_.size(); }

  [[nodiscard]] char peek() const {
    if (at_end()) fail("unexpected end of input");
    return text_[pos_];
  }

  char advance() {
    const char c = peek();
    ++pos_;
    return c;
  }

  void expect(char c) {
    if (peek() != c) fail(wfs::support::format("expected '{}'", c));
    ++pos_;
  }

  void skip_whitespace() noexcept {
    while (pos_ < text_.size()) {
      const char c = text_[pos_];
      if (c == ' ' || c == '\t' || c == '\n' || c == '\r') {
        ++pos_;
      } else {
        break;
      }
    }
  }

  bool consume_literal(std::string_view literal) {
    if (text_.substr(pos_, literal.size()) == literal) {
      pos_ += literal.size();
      return true;
    }
    return false;
  }

  Value parse_value(std::size_t depth) {
    if (depth > max_depth_) fail("maximum nesting depth exceeded");
    skip_whitespace();
    const char c = peek();
    switch (c) {
      case '{': return parse_object(depth);
      case '[': return parse_array(depth);
      case '"': return Value(parse_string());
      case 't':
        if (consume_literal("true")) return Value(true);
        fail("invalid literal");
      case 'f':
        if (consume_literal("false")) return Value(false);
        fail("invalid literal");
      case 'n':
        if (consume_literal("null")) return Value(nullptr);
        fail("invalid literal");
      default: return parse_number();
    }
  }

  Value parse_object(std::size_t depth) {
    expect('{');
    Object object;
    skip_whitespace();
    if (peek() == '}') {
      ++pos_;
      return Value(std::move(object));
    }
    while (true) {
      skip_whitespace();
      if (peek() != '"') fail("expected string key");
      std::string key = parse_string();
      skip_whitespace();
      expect(':');
      object.set(std::move(key), parse_value(depth + 1));
      skip_whitespace();
      const char next = advance();
      if (next == '}') return Value(std::move(object));
      if (next != ',') fail("expected ',' or '}' in object");
    }
  }

  Value parse_array(std::size_t depth) {
    expect('[');
    Array array;
    skip_whitespace();
    if (peek() == ']') {
      ++pos_;
      return Value(std::move(array));
    }
    while (true) {
      array.push_back(parse_value(depth + 1));
      skip_whitespace();
      const char next = advance();
      if (next == ']') return Value(std::move(array));
      if (next != ',') fail("expected ',' or ']' in array");
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (at_end()) fail("unterminated string");
      const char c = advance();
      if (c == '"') return out;
      if (static_cast<unsigned char>(c) < 0x20) fail("raw control character in string");
      if (c != '\\') {
        out.push_back(c);
        continue;
      }
      const char escape = advance();
      switch (escape) {
        case '"': out.push_back('"'); break;
        case '\\': out.push_back('\\'); break;
        case '/': out.push_back('/'); break;
        case 'b': out.push_back('\b'); break;
        case 'f': out.push_back('\f'); break;
        case 'n': out.push_back('\n'); break;
        case 'r': out.push_back('\r'); break;
        case 't': out.push_back('\t'); break;
        case 'u': append_unicode_escape(out); break;
        default: fail("invalid escape sequence");
      }
    }
  }

  unsigned parse_hex4() {
    unsigned value = 0;
    for (int i = 0; i < 4; ++i) {
      const char c = advance();
      value <<= 4;
      if (c >= '0' && c <= '9') {
        value |= static_cast<unsigned>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        value |= static_cast<unsigned>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        value |= static_cast<unsigned>(c - 'A' + 10);
      } else {
        fail("invalid \\u escape");
      }
    }
    return value;
  }

  void append_unicode_escape(std::string& out) {
    unsigned code = parse_hex4();
    // Combine UTF-16 surrogate pairs.
    if (code >= 0xD800 && code <= 0xDBFF) {
      if (!consume_literal("\\u")) fail("unpaired UTF-16 high surrogate");
      const unsigned low = parse_hex4();
      if (low < 0xDC00 || low > 0xDFFF) fail("invalid UTF-16 low surrogate");
      code = 0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00);
    } else if (code >= 0xDC00 && code <= 0xDFFF) {
      fail("unpaired UTF-16 low surrogate");
    }
    append_utf8(out, code);
  }

  static void append_utf8(std::string& out, unsigned code) {
    if (code < 0x80) {
      out.push_back(static_cast<char>(code));
    } else if (code < 0x800) {
      out.push_back(static_cast<char>(0xC0 | (code >> 6)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else if (code < 0x10000) {
      out.push_back(static_cast<char>(0xE0 | (code >> 12)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    } else {
      out.push_back(static_cast<char>(0xF0 | (code >> 18)));
      out.push_back(static_cast<char>(0x80 | ((code >> 12) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
      out.push_back(static_cast<char>(0x80 | (code & 0x3F)));
    }
  }

  Value parse_number() {
    const std::size_t start = pos_;
    if (!at_end() && peek() == '-') ++pos_;
    if (at_end() || std::isdigit(static_cast<unsigned char>(peek())) == 0) {
      fail("invalid number");
    }
    if (peek() == '0') {
      ++pos_;
    } else {
      while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
    }
    bool is_integer = true;
    if (!at_end() && text_[pos_] == '.') {
      is_integer = false;
      ++pos_;
      if (at_end() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        fail("digit expected after decimal point");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
    }
    if (!at_end() && (text_[pos_] == 'e' || text_[pos_] == 'E')) {
      is_integer = false;
      ++pos_;
      if (!at_end() && (text_[pos_] == '+' || text_[pos_] == '-')) ++pos_;
      if (at_end() || std::isdigit(static_cast<unsigned char>(text_[pos_])) == 0) {
        fail("digit expected in exponent");
      }
      while (!at_end() && std::isdigit(static_cast<unsigned char>(text_[pos_])) != 0) ++pos_;
    }
    const std::string_view token = text_.substr(start, pos_ - start);
    if (is_integer) {
      std::int64_t value = 0;
      const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
      if (ec == std::errc() && ptr == token.data() + token.size()) return Value(value);
      // Out-of-range integers degrade to double (matches common parsers).
    }
    const std::string buffer(token);
    char* end = nullptr;
    const double value = std::strtod(buffer.c_str(), &end);
    if (end != buffer.c_str() + buffer.size() || !std::isfinite(value)) fail("invalid number");
    return Value(value);
  }

  std::string_view text_;
  std::size_t pos_ = 0;
  std::size_t max_depth_;
};

}  // namespace

ParseError::ParseError(std::string message, std::size_t line, std::size_t column)
    : std::runtime_error(wfs::support::format("json parse error at {}:{}: {}", line, column, message)),
      line_(line),
      column_(column) {}

Value parse(std::string_view text, std::size_t max_depth) {
  Parser parser(text, max_depth);
  return parser.parse_document();
}

bool try_parse(std::string_view text, Value& out, std::string& error) {
  try {
    out = parse(text);
    return true;
  } catch (const ParseError& e) {
    error = e.what();
    return false;
  }
}

}  // namespace wfs::json
