#include "obs/critical_path.h"

#include <algorithm>
#include <unordered_map>

namespace wfs::obs {
namespace {

/// Splits one node's interval [window_start, timing.finished] into segments.
/// Boundaries are forced monotonic so the pieces telescope exactly; the
/// interior of the attempt window is closed by an overhead residual (network
/// round-trips, response handling) computed by subtraction.
CriticalPathNode attribute(const TaskTiming& timing, double window_start, bool first_node) {
  CriticalPathNode node;
  node.name = timing.name;
  node.task_id = timing.task_id;
  node.start_seconds = window_start;

  const double t0 = window_start;
  const double t1 = std::max(t0, timing.released);
  // Tasks that never sent an attempt (input-wait timeout, upstream failure)
  // report first_sent == finished: the whole window past dispatch is wait.
  const double sent = timing.attempts > 0 ? timing.first_sent : timing.finished;
  const double t2 = std::max(t1, timing.dispatched);
  const double t3 = std::max(t2, sent);
  const double t4 = std::max(t3, timing.finished);
  node.end_seconds = t4;

  // Pre-release gap: for the chain's first node this is the header marker /
  // platform warm-up (overhead); between nodes it is ~0 by construction
  // (gates open at the predecessor's finish instant) but any scheduler slack
  // counts as queueing.
  node.segments[first_node ? Segment::kOverhead : Segment::kQueue] += t1 - t0;
  // Gate-open -> dispatch: the WFM's own delay (phase_delay / dispatch_delay).
  node.segments[Segment::kQueue] += t2 - t1;
  // Dispatch -> first attempt: input-availability polling.
  node.segments[Segment::kInputWait] += t3 - t2;

  // The attempt window [t3, t4] splits along the server-reported segments;
  // cold start is carved out of the buffered time it overlaps.
  const double wall = t4 - t3;
  const double cold = std::min(timing.cold_start_seconds, timing.queue_seconds);
  node.segments[Segment::kColdStart] += cold;
  node.segments[Segment::kQueue] += timing.queue_seconds - cold;
  node.segments[Segment::kTransfer] += timing.transfer_seconds;
  node.segments[Segment::kCompute] += timing.compute_seconds;
  node.segments[Segment::kRetryBackoff] += timing.retry_wait_seconds;
  node.segments[Segment::kOverhead] += wall - timing.queue_seconds -
                                       timing.transfer_seconds - timing.compute_seconds -
                                       timing.retry_wait_seconds;
  return node;
}

}  // namespace

std::vector<CriticalPathNode> observed_critical_path(const std::vector<TaskTiming>& timings) {
  std::vector<CriticalPathNode> path;
  if (timings.empty()) return path;

  std::unordered_map<std::int64_t, std::size_t> by_id;
  by_id.reserve(timings.size());
  std::size_t tail = 0;
  for (std::size_t i = 0; i < timings.size(); ++i) {
    if (timings[i].task_id >= 0) by_id.emplace(timings[i].task_id, i);
    if (timings[i].finished > timings[tail].finished) tail = i;
  }

  // Chain backwards over gated_by; the bound guards against malformed input
  // (a gated_by cycle would otherwise never terminate).
  std::vector<std::size_t> chain;
  std::size_t current = tail;
  while (chain.size() <= timings.size()) {
    chain.push_back(current);
    const std::int64_t pred = timings[current].gated_by;
    if (pred < 0) break;
    const auto it = by_id.find(pred);
    if (it == by_id.end() || it->second == current) break;
    current = it->second;
  }
  std::reverse(chain.begin(), chain.end());

  path.reserve(chain.size());
  double window_start = 0.0;
  for (std::size_t i = 0; i < chain.size(); ++i) {
    path.push_back(attribute(timings[chain[i]], window_start, /*first_node=*/i == 0));
    window_start = path.back().end_seconds;
  }
  return path;
}

}  // namespace wfs::obs
