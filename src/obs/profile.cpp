#include "obs/profile.h"

#include <algorithm>
#include <stdexcept>

#include "obs/critical_path.h"
#include "sim/clock.h"

namespace wfs::obs {
namespace {

constexpr const char* kSegmentNames[kSegmentCount] = {
    "queue", "cold-start", "input-wait", "transfer", "compute", "retry-backoff", "overhead",
};

json::Value breakdown_to_json(const SegmentBreakdown& breakdown) {
  json::Object out;
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    out.set(kSegmentNames[i], breakdown.seconds[i]);
  }
  return json::Value(std::move(out));
}

SegmentBreakdown breakdown_from_json(const json::Value& value) {
  SegmentBreakdown breakdown;
  if (!value.is_object()) return breakdown;
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    if (const json::Value* v = value.find(kSegmentNames[i])) {
      breakdown.seconds[i] = v->double_or(0.0);
    }
  }
  return breakdown;
}

json::Value series_to_json(const metrics::TimeSeries& series) {
  json::Array t;
  json::Array v;
  for (const metrics::Sample& sample : series.samples()) {
    t.emplace_back(sim::to_seconds(sample.time));
    v.emplace_back(sample.value);
  }
  json::Object out;
  out.set("t", std::move(t));
  out.set("v", std::move(v));
  return json::Value(std::move(out));
}

metrics::TimeSeries series_from_json(const json::Value& value) {
  metrics::TimeSeries series;
  if (!value.is_object()) return series;
  const json::Value* t = value.find("t");
  const json::Value* v = value.find("v");
  if (t == nullptr || v == nullptr || !t->is_array() || !v->is_array()) return series;
  const std::size_t n = std::min(t->as_array().size(), v->as_array().size());
  for (std::size_t i = 0; i < n; ++i) {
    series.push(sim::from_seconds(t->as_array()[i].double_or(0.0)),
                v->as_array()[i].double_or(0.0));
  }
  return series;
}

}  // namespace

const char* to_string(Segment segment) noexcept {
  const auto index = static_cast<std::size_t>(segment);
  return index < kSegmentCount ? kSegmentNames[index] : "?";
}

Segment parse_segment(std::string_view name) {
  for (std::size_t i = 0; i < kSegmentCount; ++i) {
    if (name == kSegmentNames[i]) return static_cast<Segment>(i);
  }
  throw std::invalid_argument("unknown profile segment: " + std::string(name));
}

double SegmentBreakdown::total() const noexcept {
  double sum = 0.0;
  for (const double s : seconds) sum += s;
  return sum;
}

Segment SegmentBreakdown::dominant() const noexcept {
  std::size_t best = 0;
  for (std::size_t i = 1; i < kSegmentCount; ++i) {
    if (seconds[i] > seconds[best]) best = i;
  }
  return static_cast<Segment>(best);
}

SegmentBreakdown& SegmentBreakdown::operator+=(const SegmentBreakdown& other) noexcept {
  for (std::size_t i = 0; i < kSegmentCount; ++i) seconds[i] += other.seconds[i];
  return *this;
}

RunProfile build_profile(const std::vector<TaskTiming>& timings, double makespan_seconds) {
  RunProfile profile;
  profile.valid = true;
  profile.makespan_seconds = makespan_seconds;
  profile.cp_length_seconds = makespan_seconds;

  profile.path = observed_critical_path(timings);
  for (const CriticalPathNode& node : profile.path) profile.critical += node.segments;
  // Tail gap (last finish -> tail marker response) closes the attribution
  // over [0, makespan]; with no tasks the whole run is marker overhead.
  const double covered = profile.path.empty() ? 0.0 : profile.path.back().end_seconds;
  profile.critical[Segment::kOverhead] += makespan_seconds - covered;

  // Per-task totals and the finish-ordered series. The per-task window is
  // [released, finished] — overlapping across parallel tasks, so the totals
  // measure task-time, not wall time.
  std::vector<const TaskTiming*> by_finish;
  by_finish.reserve(timings.size());
  for (const TaskTiming& timing : timings) by_finish.push_back(&timing);
  std::sort(by_finish.begin(), by_finish.end(),
            [](const TaskTiming* a, const TaskTiming* b) { return a->finished < b->finished; });
  std::vector<TaskTiming> single(1);
  for (const TaskTiming* timing : by_finish) {
    single[0] = *timing;
    single[0].gated_by = -1;
    const std::vector<CriticalPathNode> own = observed_critical_path(single);
    SegmentBreakdown segments;
    for (const CriticalPathNode& node : own) segments += node.segments;
    // The single-node walk starts its window at 0; drop the pre-release part.
    segments[Segment::kOverhead] -= timing->released;
    profile.total += segments;
    const sim::SimTime finish = sim::from_seconds(timing->finished);
    const double sent = timing->attempts > 0 ? timing->first_sent : timing->finished;
    profile.task_wall_series.push(finish, std::max(0.0, timing->finished - sent));
    profile.queue_series.push(
        finish,
        std::max(0.0, timing->dispatched - timing->released) + timing->queue_seconds);
    profile.transfer_series.push(finish, timing->transfer_seconds);
  }
  return profile;
}

json::Value profile_to_json(const RunProfile& profile) {
  json::Object out;
  out.set("makespan_seconds", profile.makespan_seconds);
  out.set("cp_length_seconds", profile.cp_length_seconds);
  out.set("static_cp_seconds", profile.static_cp_seconds);
  out.set("critical", breakdown_to_json(profile.critical));
  out.set("total", breakdown_to_json(profile.total));
  json::Array path;
  for (const CriticalPathNode& node : profile.path) {
    json::Object rendered;
    rendered.set("task", node.name);
    rendered.set("id", node.task_id);
    rendered.set("start_seconds", node.start_seconds);
    rendered.set("end_seconds", node.end_seconds);
    rendered.set("segments", breakdown_to_json(node.segments));
    path.emplace_back(std::move(rendered));
  }
  out.set("path", std::move(path));
  json::Object series;
  series.set("task_wall", series_to_json(profile.task_wall_series));
  series.set("queue", series_to_json(profile.queue_series));
  series.set("transfer", series_to_json(profile.transfer_series));
  out.set("series", std::move(series));
  return json::Value(std::move(out));
}

RunProfile profile_from_json(const json::Value& value) {
  RunProfile profile;
  if (!value.is_object()) return profile;
  profile.valid = true;
  if (const json::Value* v = value.find("makespan_seconds")) {
    profile.makespan_seconds = v->double_or(0.0);
  }
  if (const json::Value* v = value.find("cp_length_seconds")) {
    profile.cp_length_seconds = v->double_or(0.0);
  }
  if (const json::Value* v = value.find("static_cp_seconds")) {
    profile.static_cp_seconds = v->double_or(0.0);
  }
  if (const json::Value* v = value.find("critical")) {
    profile.critical = breakdown_from_json(*v);
  }
  if (const json::Value* v = value.find("total")) profile.total = breakdown_from_json(*v);
  if (const json::Value* path = value.find("path"); path != nullptr && path->is_array()) {
    for (const json::Value& entry : path->as_array()) {
      CriticalPathNode node;
      if (const json::Value* v = entry.find("task")) node.name = v->string_or("");
      if (const json::Value* v = entry.find("id")) node.task_id = v->int_or(-1);
      if (const json::Value* v = entry.find("start_seconds")) {
        node.start_seconds = v->double_or(0.0);
      }
      if (const json::Value* v = entry.find("end_seconds")) {
        node.end_seconds = v->double_or(0.0);
      }
      if (const json::Value* v = entry.find("segments")) {
        node.segments = breakdown_from_json(*v);
      }
      profile.path.push_back(std::move(node));
    }
  }
  if (const json::Value* series = value.find("series")) {
    if (const json::Value* v = series->find("task_wall")) {
      profile.task_wall_series = series_from_json(*v);
    }
    if (const json::Value* v = series->find("queue")) {
      profile.queue_series = series_from_json(*v);
    }
    if (const json::Value* v = series->find("transfer")) {
      profile.transfer_series = series_from_json(*v);
    }
  }
  return profile;
}

}  // namespace wfs::obs
