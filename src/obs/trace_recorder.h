// Unified run tracing — the observability layer behind the paper's §IV
// overhead attribution.
//
// One TraceRecorder is shared by every component of a simulated deployment:
// the WorkflowManager emits per-task attempt spans (queued → input-wait →
// in-flight → retry-backoff → done), the FaaS platform emits pod lifecycle
// spans (scheduled → cold-starting → serving → terminated), autoscaler
// decisions (with stable/panic window averages) and activator buffering,
// and the router emits HTTP request/response hops. Events carry simulated
// timestamps (SimTime is already microseconds, Chrome's trace unit).
//
// The recorder is organised like a multi-process Chrome trace: each
// component registers a *process* lane (pid — one per service/manager/node)
// and any number of *thread* lanes under it (tid — one per pod, per task,
// per authority). Export renders chrome://tracing / Perfetto importable
// JSON with process_name/thread_name metadata.
//
// Recording is opt-in and off by default. Every emit call is gated on
// `enabled()`; components hold a plain pointer (nullptr = no tracing), so
// the disabled cost is one branch per call site and zero allocations.
//
// Thread safety: registration, emission, clear() and export are internally
// synchronized, so one recorder may be shared by concurrent runs (parallel
// campaigns, --jobs N). events() returns an unsynchronized reference — read
// it only after concurrent emitters have quiesced.
#pragma once

#include <atomic>
#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "json/value.h"
#include "sim/clock.h"

namespace wfs::obs {

/// One trace event. `phase` follows the Chrome trace-event format:
/// 'M' metadata (emitted by the exporter), 'X' complete span, 'i' instant,
/// 'C' counter.
struct TraceEvent {
  std::string name;
  std::string category;
  char phase = 'X';
  std::uint32_t pid = 0;
  std::uint64_t tid = 0;
  sim::SimTime ts = 0;        // microseconds (SimTime native unit)
  sim::SimTime dur = 0;       // complete events only
  json::Object args;
};

class TraceRecorder {
 public:
  using Pid = std::uint32_t;
  using Tid = std::uint64_t;

  TraceRecorder() = default;

  /// Recording gate. Off by default; emit calls are no-ops while disabled.
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Registers (or looks up) a process lane. Pids start at 1.
  Pid process(const std::string& name);

  /// Registers (or looks up) a thread lane under `pid`. Tids start at 1 and
  /// are unique across the whole recorder, so a (pid, tid) pair never
  /// collides between processes.
  Tid lane(Pid pid, const std::string& name);

  /// A span that covered [start, end] on the given lane.
  void complete(Pid pid, Tid tid, std::string name, std::string category,
                sim::SimTime start, sim::SimTime end, json::Object args = {});

  /// A point-in-time marker.
  void instant(Pid pid, Tid tid, std::string name, std::string category,
               sim::SimTime ts, json::Object args = {});

  /// A sampled counter series (rendered as a stacked area track).
  void counter(Pid pid, std::string name, sim::SimTime ts, double value);

  /// Unsynchronized view — only valid once concurrent emitters quiesced.
  [[nodiscard]] const std::vector<TraceEvent>& events() const noexcept { return events_; }
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// Multi-process Chrome trace JSON: process_name/thread_name 'M' metadata
  /// for every registered lane, then the recorded events.
  [[nodiscard]] std::string chrome_trace_json() const;

  /// Writes chrome_trace_json() to `path`. Returns false on I/O error.
  bool save(const std::string& path) const;

 private:
  struct LaneInfo {
    Pid pid = 0;
    Tid tid = 0;
    std::string name;
  };
  struct ProcessInfo {
    std::string name;
  };

  std::atomic<bool> enabled_{false};
  /// Guards processes_/lanes_/events_ against concurrent runs sharing one
  /// recorder (parallel campaigns).
  mutable std::mutex mutex_;
  std::vector<ProcessInfo> processes_;  // index = pid - 1
  std::vector<LaneInfo> lanes_;         // index = tid - 1
  std::vector<TraceEvent> events_;
};

}  // namespace wfs::obs
