// Run profiling — always-available makespan attribution (no trace needed).
//
// Answers the question the Chrome traces only answer visually: *why* is a
// run's makespan what it is? The WFM and FaaS layers already measure every
// per-attempt segment (scheduler queueing, activator buffering, pod cold
// start, input-wait polling, data-plane transfer, compute, retry backoff);
// the profiler consumes those per-task timelines, extracts the *observed*
// critical path through the executed DAG — walking dependency edges and the
// phase-barrier's resource-wait edges — and attributes the full makespan to
// a fixed segment taxonomy.
//
// The attribution telescopes: every critical-path node accounts for the
// exact interval from its predecessor's finish to its own finish, interior
// splits are residual-closed, and the head/tail marker gaps land in the
// overhead bucket — so the per-segment seconds sum to the makespan to
// floating-point precision (asserted at 1e-6 s by tests and bench).
//
// Unlike tracing, profiling is always on: building a RunProfile is one
// O(tasks) pass at run completion, so every WorkflowRunResult carries one.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "json/value.h"
#include "metrics/time_series.h"

namespace wfs::obs {

/// The fixed segment taxonomy makespan is attributed to.
enum class Segment : std::uint8_t {
  kQueue = 0,     // scheduler gate delay + platform buffering awaiting capacity
  kColdStart,     // buffered time overlapping the serving pod's cold start
  kInputWait,     // WFM polling the data store for parent outputs
  kTransfer,      // data-plane reads + writes inside the service
  kCompute,       // wfbench stress (cpu/memory) phase
  kRetryBackoff,  // WFM backoff between re-sent attempts
  kOverhead,      // network hops, header/tail markers, unattributed residual
};
inline constexpr std::size_t kSegmentCount = 7;

[[nodiscard]] const char* to_string(Segment segment) noexcept;
/// Inverse of to_string; throws std::invalid_argument on unknown names.
[[nodiscard]] Segment parse_segment(std::string_view name);

/// Seconds per segment. Indexable by Segment; total() sums all buckets.
struct SegmentBreakdown {
  std::array<double, kSegmentCount> seconds{};

  [[nodiscard]] double& operator[](Segment s) noexcept {
    return seconds[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double operator[](Segment s) const noexcept {
    return seconds[static_cast<std::size_t>(s)];
  }
  [[nodiscard]] double total() const noexcept;
  /// Largest bucket (ties: first in enum order).
  [[nodiscard]] Segment dominant() const noexcept;

  SegmentBreakdown& operator+=(const SegmentBreakdown& other) noexcept;
};

/// One task's observed timeline, produced by the WorkflowManager. All
/// instants are run-relative seconds; the per-segment durations come from
/// the response's ServerTiming plus the WFM's own bookkeeping.
struct TaskTiming {
  std::string name;
  std::int64_t task_id = -1;   // columnar plan id
  std::int64_t gated_by = -1;  // plan id whose completion opened this gate (-1 = ready at start)
  double released = 0.0;       // gate opened
  double dispatched = 0.0;     // first dispatch (input checks begin)
  double first_sent = 0.0;     // first HTTP attempt left the WFM
  double finished = 0.0;       // final response arrived
  double queue_seconds = 0.0;      // platform buffering across attempts
  double cold_start_seconds = 0.0; // part of the buffering spent on a pod boot
  double transfer_seconds = 0.0;   // service-side reads + writes
  double compute_seconds = 0.0;    // service-side stress phase
  double retry_wait_seconds = 0.0; // WFM backoff between attempts
  int attempts = 0;
  bool ok = false;
};

/// One node of the observed critical path. The node owns the interval
/// [start_seconds, end_seconds] — from its predecessor's finish (or run
/// start) to its own finish — and `segments` splits exactly that interval.
struct CriticalPathNode {
  std::string name;
  std::int64_t task_id = -1;
  double start_seconds = 0.0;
  double end_seconds = 0.0;
  SegmentBreakdown segments;

  [[nodiscard]] Segment dominant() const noexcept { return segments.dominant(); }
};

/// The profiler's output, carried on every completed WorkflowRunResult.
struct RunProfile {
  bool valid = false;  // false for cancelled / never-finished runs
  double makespan_seconds = 0.0;
  /// Span of the observed critical path. The chain is contiguous from run
  /// start to run end (marker gaps are attributed as overhead), so this
  /// equals the makespan — and is therefore always >= the static DAG lower
  /// bound below.
  double cp_length_seconds = 0.0;
  /// wfcommons::critical_path over the abstract DAG: the uncontended-compute
  /// lower bound that ignores cold starts, queueing and transfers.
  double static_cp_seconds = 0.0;
  std::vector<CriticalPathNode> path;  // root .. last-finishing task
  /// Attribution along the critical path; total() == makespan (±1e-6 s).
  SegmentBreakdown critical;
  /// Attribution summed over ALL tasks (parallel work overlaps, so this
  /// totals task-time, not wall time).
  SegmentBreakdown total;
  /// Per-task series keyed by finish time, for windowed percentiles
  /// (metrics::windowed_percentile) — attribution-over-time under load.
  metrics::TimeSeries task_wall_series;  // first attempt sent -> final response
  metrics::TimeSeries queue_series;      // gate delay + platform buffering
  metrics::TimeSeries transfer_series;   // data-plane seconds

  /// Critical-path share of a segment, percent of makespan.
  [[nodiscard]] double pct(Segment s) const noexcept {
    return makespan_seconds > 0.0 ? critical[s] / makespan_seconds * 100.0 : 0.0;
  }
  [[nodiscard]] Segment dominant() const noexcept { return critical.dominant(); }
};

/// Builds the profile from per-task timelines: extracts the observed
/// critical path (obs/critical_path.h) and closes the attribution over
/// [0, makespan]. `timings` may arrive in any order.
[[nodiscard]] RunProfile build_profile(const std::vector<TaskTiming>& timings,
                                       double makespan_seconds);

/// JSON round-trip for the results schema's "profile" key.
[[nodiscard]] json::Value profile_to_json(const RunProfile& profile);
[[nodiscard]] RunProfile profile_from_json(const json::Value& value);

}  // namespace wfs::obs
