#include "obs/trace_recorder.h"

#include <fstream>
#include <utility>

#include "json/write.h"

namespace wfs::obs {

TraceRecorder::Pid TraceRecorder::process(const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    if (processes_[i].name == name) return static_cast<Pid>(i + 1);
  }
  processes_.push_back(ProcessInfo{name});
  return static_cast<Pid>(processes_.size());
}

TraceRecorder::Tid TraceRecorder::lane(Pid pid, const std::string& name) {
  const std::lock_guard<std::mutex> lock(mutex_);
  for (const LaneInfo& info : lanes_) {
    if (info.pid == pid && info.name == name) return info.tid;
  }
  const Tid tid = static_cast<Tid>(lanes_.size() + 1);
  lanes_.push_back(LaneInfo{pid, tid, name});
  return tid;
}

void TraceRecorder::complete(Pid pid, Tid tid, std::string name, std::string category,
                             sim::SimTime start, sim::SimTime end, json::Object args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'X';
  event.pid = pid;
  event.tid = tid;
  event.ts = start;
  event.dur = end > start ? end - start : 0;
  event.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::instant(Pid pid, Tid tid, std::string name, std::string category,
                            sim::SimTime ts, json::Object args) {
  if (!enabled()) return;
  TraceEvent event;
  event.name = std::move(name);
  event.category = std::move(category);
  event.phase = 'i';
  event.pid = pid;
  event.tid = tid;
  event.ts = ts;
  event.args = std::move(args);
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

void TraceRecorder::counter(Pid pid, std::string name, sim::SimTime ts, double value) {
  if (!enabled()) return;
  TraceEvent event;
  event.phase = 'C';
  event.pid = pid;
  event.ts = ts;
  json::Object series;
  series.set("value", value);
  event.args = std::move(series);
  event.name = std::move(name);
  event.category = "counter";
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.push_back(std::move(event));
}

std::size_t TraceRecorder::size() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  return events_.size();
}

void TraceRecorder::clear() {
  const std::lock_guard<std::mutex> lock(mutex_);
  events_.clear();
  processes_.clear();
  lanes_.clear();
}

std::string TraceRecorder::chrome_trace_json() const {
  const std::lock_guard<std::mutex> lock(mutex_);
  json::Array out;
  for (std::size_t i = 0; i < processes_.size(); ++i) {
    json::Object meta;
    meta.set("name", "process_name");
    meta.set("ph", "M");
    meta.set("pid", static_cast<std::int64_t>(i + 1));
    json::Object args;
    args.set("name", processes_[i].name);
    meta.set("args", std::move(args));
    out.emplace_back(std::move(meta));
  }
  for (const LaneInfo& info : lanes_) {
    json::Object meta;
    meta.set("name", "thread_name");
    meta.set("ph", "M");
    meta.set("pid", static_cast<std::int64_t>(info.pid));
    meta.set("tid", static_cast<std::int64_t>(info.tid));
    json::Object args;
    args.set("name", info.name);
    meta.set("args", std::move(args));
    out.emplace_back(std::move(meta));
  }
  for (const TraceEvent& event : events_) {
    json::Object rendered;
    rendered.set("name", event.name);
    rendered.set("cat", event.category);
    rendered.set("ph", std::string(1, event.phase));
    rendered.set("ts", event.ts);
    if (event.phase == 'X') rendered.set("dur", event.dur);
    if (event.phase == 'i') rendered.set("s", "t");  // thread-scoped instant
    rendered.set("pid", static_cast<std::int64_t>(event.pid));
    if (event.phase != 'C') rendered.set("tid", static_cast<std::int64_t>(event.tid));
    if (!event.args.empty()) rendered.set("args", event.args);
    out.emplace_back(std::move(rendered));
  }
  json::Object document;
  document.set("displayTimeUnit", "ms");
  document.set("traceEvents", std::move(out));
  return json::write_compact(json::Value(std::move(document)));
}

bool TraceRecorder::save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return false;
  out << chrome_trace_json();
  return static_cast<bool>(out);
}

}  // namespace wfs::obs
