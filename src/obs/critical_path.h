// Observed critical-path extraction.
//
// The WFM records, per task, which completion opened its ready gate
// (`gated_by`): the last-finishing DAG parent under dependency-driven
// scheduling, or the last-finishing task of the previous non-empty level
// under the phase barrier — the barrier IS a resource-wait edge, so the
// walk follows both edge kinds with one mechanism. Chaining gated_by
// backwards from the last-finishing task yields a path whose nodes tile
// [first gate open, last finish] with no holes: each gate opened at the
// exact instant its predecessor finished.
#pragma once

#include <vector>

#include "obs/profile.h"

namespace wfs::obs {

/// Walks gated_by edges back from the last-finishing task and attributes
/// each node's interval [predecessor finish, own finish] to the segment
/// taxonomy. The first node's pre-release gap (header marker / platform
/// warm-up) lands in kOverhead. Returns the path in execution order
/// (root .. tail); empty for empty input.
[[nodiscard]] std::vector<CriticalPathNode> observed_critical_path(
    const std::vector<TaskTiming>& timings);

}  // namespace wfs::obs
