// WfGen facade: generate single workflows or the full 7-family benchmark
// suite the paper evaluates.
#pragma once

#include <string_view>
#include <vector>

#include "wfcommons/recipes/recipe.h"
#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

class WorkflowGenerator {
 public:
  explicit WorkflowGenerator(GenerateOptions defaults = {}) : defaults_(defaults) {}

  /// Generates one instance; num_tasks/seed override the defaults.
  [[nodiscard]] Workflow generate(std::string_view recipe, std::size_t num_tasks,
                                  std::uint64_t seed) const;
  [[nodiscard]] Workflow generate(std::string_view recipe) const;

  /// One instance of every family at the same target size — the paper's
  /// benchmark suite for a given workflow size.
  [[nodiscard]] std::vector<Workflow> generate_suite(std::size_t num_tasks,
                                                     std::uint64_t seed) const;

  [[nodiscard]] const GenerateOptions& defaults() const noexcept { return defaults_; }

 private:
  GenerateOptions defaults_;
};

}  // namespace wfs::wfcommons
