#include "wfcommons/wfformat.h"

#include <algorithm>
#include <stdexcept>
#include <unordered_map>

#include "json/parse.h"
#include "json/write.h"
#include "support/format.h"
#include "support/strings.h"

namespace wfs::wfcommons {
namespace {

json::Value files_to_json(const Task& task) {
  json::Array files;
  for (const TaskFile& f : task.files) {
    json::Object entry;
    entry.set("link", f.link == TaskFile::Link::kOutput ? "output" : "input");
    entry.set("name", f.name);
    entry.set("sizeInBytes", f.size_bytes);
    files.emplace_back(std::move(entry));
  }
  return json::Value(std::move(files));
}

json::Value arguments_kv(const Task& task) {
  // The single key/value object the Knative translator emits — identical in
  // shape to the wfbench POST body (paper §III-B).
  json::Object kv;
  kv.set("name", task.name);
  kv.set("percent-cpu", task.percent_cpu);
  kv.set("cpu-work", task.cpu_work);
  kv.set("memory-bytes", task.memory_bytes);
  json::Object out_files;
  for (const TaskFile* f : task.outputs()) out_files.set(f->name, f->size_bytes);
  kv.set("out", std::move(out_files));
  json::Array inputs;
  for (const TaskFile* f : task.inputs()) inputs.emplace_back(f->name);
  kv.set("inputs", std::move(inputs));
  json::Array arguments;
  arguments.emplace_back(std::move(kv));
  return json::Value(std::move(arguments));
}

json::Value arguments_list(const Task& task) {
  json::Array arguments;
  arguments.emplace_back("--name=" + task.name);
  arguments.emplace_back(support::format("--percent-cpu={}", task.percent_cpu));
  arguments.emplace_back(support::format("--cpu-work={}", task.cpu_work));
  arguments.emplace_back(support::format("--memory-bytes={}", task.memory_bytes));
  std::vector<std::string> outs;
  for (const TaskFile* f : task.outputs()) {
    outs.push_back(support::format("{}:{}", f->name, f->size_bytes));
  }
  if (!outs.empty()) arguments.emplace_back("--out=" + support::join(outs, ","));
  std::vector<std::string> ins;
  for (const TaskFile* f : task.inputs()) ins.push_back(f->name);
  if (!ins.empty()) arguments.emplace_back("--inputs=" + support::join(ins, ","));
  return json::Value(std::move(arguments));
}

json::Value strings_to_json(const std::vector<std::string>& values) {
  json::Array array;
  for (const std::string& v : values) array.emplace_back(v);
  return json::Value(std::move(array));
}

std::vector<std::string> json_to_strings(const json::Value& value, const char* what) {
  if (!value.is_array()) {
    throw std::invalid_argument(support::format("wfformat: {} is not an array", what));
  }
  std::vector<std::string> out;
  for (const json::Value& entry : value.as_array()) {
    if (!entry.is_string()) {
      throw std::invalid_argument(support::format("wfformat: {} entry is not a string", what));
    }
    out.push_back(entry.as_string());
  }
  return out;
}

void parse_kv_arguments(const json::Object& kv, Task& task) {
  if (const json::Value* v = kv.find("percent-cpu")) task.percent_cpu = v->double_or(0.6);
  if (const json::Value* v = kv.find("cpu-work")) task.cpu_work = v->double_or(100.0);
  if (const json::Value* v = kv.find("memory-bytes")) {
    task.memory_bytes = static_cast<std::uint64_t>(v->int_or(0));
  }
  // Files come from the task-level "files" list; the kv copy is redundant
  // on read (it exists for the HTTP request), so nothing else to do here.
}

void parse_list_arguments(const json::Array& list, Task& task) {
  for (const json::Value& entry : list) {
    if (!entry.is_string()) continue;
    const std::string& arg = entry.as_string();
    const auto value_of = [&](std::string_view prefix) -> std::string {
      return std::string(arg.substr(prefix.size()));
    };
    if (arg.starts_with("--percent-cpu=")) {
      task.percent_cpu = std::strtod(value_of("--percent-cpu=").c_str(), nullptr);
    } else if (arg.starts_with("--cpu-work=")) {
      task.cpu_work = std::strtod(value_of("--cpu-work=").c_str(), nullptr);
    } else if (arg.starts_with("--memory-bytes=")) {
      task.memory_bytes = std::strtoull(value_of("--memory-bytes=").c_str(), nullptr, 10);
    }
  }
}

Task task_from_json(const std::string& name, const json::Value& value) {
  if (!value.is_object()) {
    throw std::invalid_argument("wfformat: task entry is not an object: " + name);
  }
  const json::Object& obj = value.as_object();
  Task task;
  task.name = name;
  if (const json::Value* v = obj.find("name")) task.name = v->string_or(name);
  if (const json::Value* v = obj.find("id")) task.id = v->string_or("");
  if (const json::Value* v = obj.find("category")) task.category = v->string_or("");
  if (const json::Value* v = obj.find("type")) task.type = v->string_or("compute");
  if (const json::Value* v = obj.find("cores")) task.cores = static_cast<int>(v->int_or(1));
  if (const json::Value* v = obj.find("runtimeInSeconds")) {
    task.runtime_seconds = v->double_or(0.0);
  }
  if (const json::Value* v = obj.find("memoryInBytes")) {
    task.memory_bytes = static_cast<std::uint64_t>(v->int_or(0));
  }
  if (const json::Value* v = obj.find("parents")) task.parents = json_to_strings(*v, "parents");
  if (const json::Value* v = obj.find("children")) {
    task.children = json_to_strings(*v, "children");
  }
  if (const json::Value* files = obj.find("files"); files != nullptr && files->is_array()) {
    for (const json::Value& entry : files->as_array()) {
      if (!entry.is_object()) continue;
      const json::Object& f = entry.as_object();
      TaskFile file;
      file.link = f.find("link") != nullptr && f.at("link").string_or("input") == "output"
                      ? TaskFile::Link::kOutput
                      : TaskFile::Link::kInput;
      file.name = f.find("name") != nullptr ? f.at("name").string_or("") : "";
      file.size_bytes = f.find("sizeInBytes") != nullptr
                            ? static_cast<std::uint64_t>(f.at("sizeInBytes").int_or(0))
                            : 0;
      task.files.push_back(std::move(file));
    }
  }
  if (const json::Value* command = obj.find("command"); command != nullptr) {
    if (const json::Value* v = command->find("program")) {
      task.program = v->string_or("wfbench.py");
    }
    if (const json::Value* v = command->find("api_url")) task.api_url = v->string_or("");
    if (const json::Value* args = command->find("arguments");
        args != nullptr && args->is_array()) {
      const json::Array& list = args->as_array();
      if (!list.empty() && list[0].is_object()) {
        parse_kv_arguments(list[0].as_object(), task);
      } else {
        parse_list_arguments(list, task);
      }
    }
  }
  return task;
}

}  // namespace

json::Value task_to_json(const Task& task, ArgsStyle style) {
  json::Object entry;
  entry.set("name", task.name);
  entry.set("type", task.type);

  json::Object command;
  command.set("program", task.program);
  command.set("arguments",
              style == ArgsStyle::kKeyValue ? arguments_kv(task) : arguments_list(task));
  if (!task.api_url.empty()) command.set("api_url", task.api_url);
  entry.set("command", std::move(command));

  entry.set("parents", strings_to_json(task.parents));
  entry.set("children", strings_to_json(task.children));
  entry.set("files", files_to_json(task));
  entry.set("runtimeInSeconds", task.runtime_seconds);
  entry.set("cores", task.cores);
  entry.set("memoryInBytes", task.memory_bytes);
  entry.set("id", task.id);
  entry.set("category", task.category);
  return json::Value(std::move(entry));
}

json::Value to_json(const Workflow& workflow, ArgsStyle style) {
  json::Object document;
  document.set("name", workflow.name());
  document.set("schema", workflow.schema_version());
  document.set("workflowSize", workflow.size());
  json::Object tasks;
  for (const Task& task : workflow.tasks()) {
    tasks.set(task.name, task_to_json(task, style));
  }
  document.set("tasks", std::move(tasks));
  return json::Value(std::move(document));
}

Workflow from_json(const json::Value& document) {
  if (!document.is_object()) throw std::invalid_argument("wfformat: document is not an object");
  const json::Object& root = document.as_object();

  Workflow workflow;
  if (const json::Value* v = root.find("name")) workflow.set_name(v->string_or(""));
  if (const json::Value* v = root.find("schema")) {
    workflow.set_schema_version(v->string_or("1.5"));
  }

  // Accept both {"tasks": {...}} and a bare top-level map of task entries
  // (the paper's excerpt shows the bare form).
  const json::Object* tasks = &root;
  if (const json::Value* v = root.find("tasks"); v != nullptr && v->is_object()) {
    tasks = &v->as_object();
  }
  for (const auto& [name, entry] : *tasks) {
    if (!entry.is_object()) continue;  // skip name/schema metadata keys
    if (entry.find("command") == nullptr && entry.find("files") == nullptr &&
        entry.find("parents") == nullptr) {
      continue;  // not a task entry
    }
    workflow.tasks().push_back(task_from_json(name, entry));
  }
  // Rebuild index lazily; verify structural sanity early so downstream code
  // can trust parents/children symmetry.
  const std::vector<std::string> problems = workflow.validate();
  if (!problems.empty()) {
    throw std::invalid_argument("wfformat: invalid workflow: " + problems.front());
  }
  return workflow;
}

Workflow parse_workflow(const std::string& text) {
  const json::Value document = json::parse(text);
  if (is_wfformat_v15(document)) return from_wfformat_v15(document);
  return from_json(document);
}

bool is_wfformat_v15(const json::Value& document) {
  const json::Value* workflow = document.find("workflow");
  return workflow != nullptr && workflow->is_object() &&
         workflow->find("specification") != nullptr;
}

json::Value to_wfformat_v15(const Workflow& workflow) {
  json::Object document;
  document.set("name", workflow.name());
  document.set("schemaVersion", "1.5");

  // files[]: every distinct file id with its size.
  json::Array files;
  {
    std::vector<std::string> seen;
    for (const Task& task : workflow.tasks()) {
      for (const TaskFile& file : task.files) {
        if (std::find(seen.begin(), seen.end(), file.name) != seen.end()) continue;
        seen.push_back(file.name);
        json::Object entry;
        entry.set("id", file.name);
        entry.set("sizeInBytes", file.size_bytes);
        files.emplace_back(std::move(entry));
      }
    }
  }

  json::Array spec_tasks;
  json::Array exec_tasks;
  for (const Task& task : workflow.tasks()) {
    json::Object spec;
    spec.set("name", task.category);
    spec.set("id", task.name);
    json::Array parents;
    for (const std::string& parent : task.parents) parents.emplace_back(parent);
    spec.set("parents", std::move(parents));
    json::Array children;
    for (const std::string& child : task.children) children.emplace_back(child);
    spec.set("children", std::move(children));
    json::Array input_files;
    for (const TaskFile* file : task.inputs()) input_files.emplace_back(file->name);
    spec.set("inputFiles", std::move(input_files));
    json::Array output_files;
    for (const TaskFile* file : task.outputs()) output_files.emplace_back(file->name);
    spec.set("outputFiles", std::move(output_files));
    spec_tasks.emplace_back(std::move(spec));

    json::Object exec;
    exec.set("id", task.name);
    exec.set("runtimeInSeconds", task.runtime_seconds);
    exec.set("coreCount", task.cores);
    exec.set("avgCPU", task.percent_cpu);
    // Non-standard-but-namespaced extras so the wfbench knobs survive the
    // upstream layout (upstream tools ignore unknown keys).
    exec.set("cpuWork", task.cpu_work);
    exec.set("memoryInBytes", task.memory_bytes);
    if (!task.api_url.empty()) exec.set("apiUrl", task.api_url);
    exec_tasks.emplace_back(std::move(exec));
  }

  json::Object specification;
  specification.set("tasks", std::move(spec_tasks));
  specification.set("files", std::move(files));
  json::Object execution;
  execution.set("tasks", std::move(exec_tasks));
  json::Object workflow_obj;
  workflow_obj.set("specification", std::move(specification));
  workflow_obj.set("execution", std::move(execution));
  document.set("workflow", std::move(workflow_obj));
  return json::Value(std::move(document));
}

Workflow from_wfformat_v15(const json::Value& document) {
  if (!is_wfformat_v15(document)) {
    throw std::invalid_argument("wfformat: not a v1.5 document");
  }
  Workflow workflow;
  if (const json::Value* v = document.find("name")) workflow.set_name(v->string_or(""));
  if (const json::Value* v = document.find("schemaVersion")) {
    workflow.set_schema_version(v->string_or("1.5"));
  }
  const json::Value& spec = *document.find("workflow")->find("specification");

  // File table first: id -> size.
  std::unordered_map<std::string, std::uint64_t> file_sizes;
  if (const json::Value* files = spec.find("files"); files != nullptr && files->is_array()) {
    for (const json::Value& entry : files->as_array()) {
      if (!entry.is_object()) continue;
      const json::Value* id = entry.find("id");
      if (id == nullptr || !id->is_string()) continue;
      const json::Value* size = entry.find("sizeInBytes");
      file_sizes[id->as_string()] =
          size != nullptr ? static_cast<std::uint64_t>(size->int_or(0)) : 0;
    }
  }

  const json::Value* tasks = spec.find("tasks");
  if (tasks == nullptr || !tasks->is_array()) {
    throw std::invalid_argument("wfformat v1.5: specification.tasks missing");
  }
  for (const json::Value& entry : tasks->as_array()) {
    if (!entry.is_object()) continue;
    Task task;
    if (const json::Value* v = entry.find("id")) task.name = v->string_or("");
    if (const json::Value* v = entry.find("name")) task.category = v->string_or("");
    if (task.name.empty()) throw std::invalid_argument("wfformat v1.5: task without id");
    // Recover the WfCommons ordinal suffix when present.
    if (const std::size_t pos = task.name.rfind('_');
        pos != std::string::npos && pos + 1 < task.name.size()) {
      task.id = task.name.substr(pos + 1);
    }
    if (const json::Value* v = entry.find("parents")) {
      task.parents = json_to_strings(*v, "parents");
    }
    if (const json::Value* v = entry.find("children")) {
      task.children = json_to_strings(*v, "children");
    }
    if (const json::Value* v = entry.find("inputFiles"); v != nullptr && v->is_array()) {
      for (const json::Value& file : v->as_array()) {
        if (!file.is_string()) continue;
        const auto it = file_sizes.find(file.as_string());
        task.files.push_back(TaskFile{TaskFile::Link::kInput, file.as_string(),
                                      it != file_sizes.end() ? it->second : 0});
      }
    }
    if (const json::Value* v = entry.find("outputFiles"); v != nullptr && v->is_array()) {
      for (const json::Value& file : v->as_array()) {
        if (!file.is_string()) continue;
        const auto it = file_sizes.find(file.as_string());
        task.files.push_back(TaskFile{TaskFile::Link::kOutput, file.as_string(),
                                      it != file_sizes.end() ? it->second : 0});
      }
    }
    workflow.tasks().push_back(std::move(task));
  }

  // Execution overlay (runtimes, the wfbench knobs, endpoints).
  if (const json::Value* execution = document.find("workflow")->find("execution")) {
    if (const json::Value* exec_tasks = execution->find("tasks");
        exec_tasks != nullptr && exec_tasks->is_array()) {
      for (const json::Value& entry : exec_tasks->as_array()) {
        if (!entry.is_object()) continue;
        const json::Value* id = entry.find("id");
        if (id == nullptr || !id->is_string()) continue;
        Task* task = workflow.find(id->as_string());
        if (task == nullptr) continue;
        if (const json::Value* v = entry.find("runtimeInSeconds")) {
          task->runtime_seconds = v->double_or(0.0);
        }
        if (const json::Value* v = entry.find("coreCount")) {
          task->cores = static_cast<int>(v->int_or(1));
        }
        if (const json::Value* v = entry.find("avgCPU")) {
          task->percent_cpu = v->double_or(task->percent_cpu);
        }
        if (const json::Value* v = entry.find("cpuWork")) {
          task->cpu_work = v->double_or(task->cpu_work);
        }
        if (const json::Value* v = entry.find("memoryInBytes")) {
          task->memory_bytes = static_cast<std::uint64_t>(v->int_or(0));
        }
        if (const json::Value* v = entry.find("apiUrl")) task->api_url = v->string_or("");
      }
    }
  }

  const std::vector<std::string> problems = workflow.validate();
  if (!problems.empty()) {
    throw std::invalid_argument("wfformat v1.5: invalid workflow: " + problems.front());
  }
  return workflow;
}

std::string write_workflow(const Workflow& workflow, ArgsStyle style) {
  return json::write_pretty(to_json(workflow, style));
}

}  // namespace wfs::wfcommons
