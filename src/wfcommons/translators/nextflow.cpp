#include "wfcommons/translators/nextflow.h"

#include <map>

#include "support/format.h"
#include "support/strings.h"
#include "wfcommons/analysis.h"

namespace wfs::wfcommons {
namespace {

// NextFlow identifiers may not contain the characters WfCommons task names
// can; sanitize to [A-Za-z0-9_].
std::string identifier(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_';
    out.push_back(ok ? c : '_');
  }
  if (!out.empty() && out[0] >= '0' && out[0] <= '9') out.insert(out.begin(), '_');
  return out;
}

}  // namespace

void NextflowTranslator::apply(Workflow& workflow) const {
  for (Task& task : workflow.tasks()) task.api_url.clear();
}

json::Value NextflowTranslator::translate(const Workflow& workflow) const {
  json::Object manifest;
  manifest.set("name", workflow.name());
  manifest.set("mainScript", "main.nf");
  manifest.set("executor", config_.executor);
  manifest.set("container", config_.container_image);
  json::Array processes;
  for (const auto& [category, count] : category_histogram(workflow)) {
    json::Object process;
    process.set("name", identifier(category));
    process.set("invocations", count);
    processes.emplace_back(std::move(process));
  }
  json::Object document;
  document.set("manifest", std::move(manifest));
  document.set("processes", std::move(processes));
  return json::Value(std::move(document));
}

std::string NextflowTranslator::translate_to_text(const Workflow& workflow) const {
  std::string out = "#!/usr/bin/env nextflow\n";
  out += support::format("// generated from {} by the wfserverless NextFlow translator\n",
                         workflow.name());
  out += "nextflow.enable.dsl = 2\n\n";

  // One process definition per function category.
  for (const auto& [category, count] : category_histogram(workflow)) {
    out += support::format(
        "process {} {{\n"
        "  container '{}'\n"
        "  input:\n"
        "    val name\n"
        "    val percentCpu\n"
        "    val cpuWork\n"
        "    path inputs\n"
        "  output:\n"
        "    path \"${{name}}_output.txt\"\n"
        "  script:\n"
        "  \"\"\"\n"
        "  wfbench.py --name=${{name}} --percent-cpu=${{percentCpu}} "
        "--cpu-work=${{cpuWork}}\n"
        "  \"\"\"\n"
        "}}\n\n",
        identifier(category), config_.container_image);
  }

  // The workflow body: invocations in topological order, channels named
  // after the producing task.
  out += "workflow {\n";
  for (const std::size_t index : topological_order(workflow)) {
    const Task& task = workflow.tasks()[index];
    std::vector<std::string> input_channels;
    for (const TaskFile* file : task.inputs()) {
      input_channels.push_back("'" + file->name + "'");
    }
    out += support::format("  {}('{}', {}, {:.1f}, [{}])\n", identifier(task.category),
                           task.name, task.percent_cpu, task.cpu_work,
                           support::join(input_channels, ", "));
  }
  out += "}\n";
  return out;
}

}  // namespace wfs::wfcommons
