// Local-container Translator — the bare-metal baseline target (§III-D):
// the same wfbench application served by a long-running Docker container,
// so tasks point at the container's published port instead of a Knative
// route.
#pragma once

#include "wfcommons/translators/translator.h"

namespace wfs::wfcommons {

struct LocalContainerTranslatorConfig {
  /// The paper runs `docker run ... -p 127.0.0.1:80:8080` and curls
  /// localhost:80/wfbench.
  std::string endpoint_url = "http://localhost:80/wfbench";
  std::string workdir = "../data/wfbench-local";
};

class LocalContainerTranslator final : public Translator {
 public:
  LocalContainerTranslator() = default;
  explicit LocalContainerTranslator(LocalContainerTranslatorConfig config)
      : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "local-container"; }
  [[nodiscard]] ArgsStyle args_style() const override { return ArgsStyle::kKeyValue; }
  void apply(Workflow& workflow) const override;

  [[nodiscard]] const LocalContainerTranslatorConfig& config() const noexcept { return config_; }

 private:
  LocalContainerTranslatorConfig config_;
};

}  // namespace wfs::wfcommons
