#include "wfcommons/translators/local_container.h"

namespace wfs::wfcommons {

void LocalContainerTranslator::apply(Workflow& workflow) const {
  for (Task& task : workflow.tasks()) {
    task.api_url = config_.endpoint_url;
  }
}

}  // namespace wfs::wfcommons
