// Translator interface — the WfCommons component the paper extends.
//
// WfCommons ships Translators for Pegasus and NextFlow; the paper
// contributes a Knative Translator (and we add a local-container one for
// the baseline). A Translator rewrites a generated workflow into the form
// one execution backend consumes: here, attaching per-function HTTP
// endpoints ("api_url") and switching the argument encoding to the
// key/value form the wfbench service accepts.
#pragma once

#include <memory>
#include <string>
#include <string_view>

#include "json/value.h"
#include "wfcommons/wfformat.h"
#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

class Translator {
 public:
  virtual ~Translator() = default;

  [[nodiscard]] virtual std::string name() const = 0;

  /// Rewrites the workflow in place for the target platform (assigns
  /// api_urls etc.). Idempotent.
  virtual void apply(Workflow& workflow) const = 0;

  /// Which argument encoding the platform's document uses.
  [[nodiscard]] virtual ArgsStyle args_style() const = 0;

  /// Full translation: copy, apply, serialize. Targets with their own
  /// document shape (Pegasus) or language (NextFlow) override these.
  [[nodiscard]] virtual json::Value translate(const Workflow& workflow) const;
  [[nodiscard]] virtual std::string translate_to_text(const Workflow& workflow) const;
};

/// Instantiates "knative", "local", "pegasus" or "nextflow" with default
/// configs. Throws std::invalid_argument for unknown targets.
[[nodiscard]] std::unique_ptr<Translator> make_translator(std::string_view target);

}  // namespace wfs::wfcommons
