#include "wfcommons/translators/translator.h"

#include <stdexcept>

#include "json/write.h"
#include "support/strings.h"
#include "wfcommons/translators/knative.h"
#include "wfcommons/translators/local_container.h"
#include "wfcommons/translators/nextflow.h"
#include "wfcommons/translators/pegasus.h"

namespace wfs::wfcommons {

json::Value Translator::translate(const Workflow& workflow) const {
  Workflow copy = workflow;
  apply(copy);
  return to_json(copy, args_style());
}

std::string Translator::translate_to_text(const Workflow& workflow) const {
  return json::write_pretty(translate(workflow));
}

std::unique_ptr<Translator> make_translator(std::string_view target) {
  const std::string key = support::to_lower(target);
  if (key == "knative") return std::make_unique<KnativeTranslator>();
  if (key == "local" || key == "local-container") {
    return std::make_unique<LocalContainerTranslator>();
  }
  if (key == "pegasus") return std::make_unique<PegasusTranslator>();
  if (key == "nextflow") return std::make_unique<NextflowTranslator>();
  throw std::invalid_argument("unknown translator target: " + key);
}

}  // namespace wfs::wfcommons
