// Hybrid Translator — the paper's §V-D/§VI conjecture made executable:
// "the optimal strategy for complex workflows might be combining executions
// on serverless and bare-metal local containers for different tasks or
// groups of tasks."
//
// Routes each task to one of two endpoints by a per-category (or default)
// policy. Because the workflow manager dispatches purely by each task's
// api_url, a single WFM run then executes one workflow across BOTH
// platforms simultaneously — no WFM changes needed.
#pragma once

#include <map>
#include <string>

#include "wfcommons/translators/translator.h"

namespace wfs::wfcommons {

struct HybridTranslatorConfig {
  std::string serverless_url = "http://wfbench.knative-functions.10.0.0.1.sslip.io:80/wfbench";
  std::string local_url = "http://localhost:80/wfbench";
  /// Category -> true = serverless, false = local containers.
  std::map<std::string, bool> category_to_serverless;
  /// Placement for categories not listed above.
  bool default_serverless = true;
};

class HybridTranslator final : public Translator {
 public:
  HybridTranslator() = default;
  explicit HybridTranslator(HybridTranslatorConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "hybrid"; }
  [[nodiscard]] ArgsStyle args_style() const override { return ArgsStyle::kKeyValue; }
  void apply(Workflow& workflow) const override;

  /// Convenience policy: wide phases (>= width_threshold tasks of one
  /// category in one level) go local (they saturate serverless capacity),
  /// everything else serverless. Returns the derived config.
  static HybridTranslatorConfig policy_by_phase_width(const Workflow& workflow,
                                                      std::size_t width_threshold,
                                                      HybridTranslatorConfig base = {});

  [[nodiscard]] const HybridTranslatorConfig& config() const noexcept { return config_; }

 private:
  HybridTranslatorConfig config_;
};

}  // namespace wfs::wfcommons
