#include "wfcommons/translators/hybrid.h"

#include "wfcommons/analysis.h"

namespace wfs::wfcommons {

void HybridTranslator::apply(Workflow& workflow) const {
  for (Task& task : workflow.tasks()) {
    bool serverless = config_.default_serverless;
    const auto it = config_.category_to_serverless.find(task.category);
    if (it != config_.category_to_serverless.end()) serverless = it->second;
    task.api_url = serverless ? config_.serverless_url : config_.local_url;
  }
}

HybridTranslatorConfig HybridTranslator::policy_by_phase_width(const Workflow& workflow,
                                                               std::size_t width_threshold,
                                                               HybridTranslatorConfig base) {
  // Count, per category, the widest level occupancy it reaches.
  std::map<std::string, std::size_t> peak_width;
  for (const auto& level : levels(workflow)) {
    std::map<std::string, std::size_t> here;
    for (const Task* task : level) ++here[task->category];
    for (const auto& [category, count] : here) {
      peak_width[category] = std::max(peak_width[category], count);
    }
  }
  for (const auto& [category, width] : peak_width) {
    base.category_to_serverless[category] = width < width_threshold;
  }
  return base;
}

}  // namespace wfs::wfcommons
