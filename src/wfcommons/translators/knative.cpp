#include "wfcommons/translators/knative.h"

namespace wfs::wfcommons {

void KnativeTranslator::apply(Workflow& workflow) const {
  for (Task& task : workflow.tasks()) {
    task.api_url = config_.service_url;
  }
}

}  // namespace wfs::wfcommons
