// NextFlow Translator — the other pre-existing WfCommons target (§III-A).
// Emits a NextFlow DSL2 script: one process per function category, one
// invocation per task, channels wired from the DAG's file dataflow. The
// JSON form is a small manifest (NextFlow itself consumes the .nf text).
#pragma once

#include "wfcommons/translators/translator.h"

namespace wfs::wfcommons {

struct NextflowTranslatorConfig {
  std::string executor = "slurm";
  std::string container_image = "wfcommons/wfbench:latest";
};

class NextflowTranslator final : public Translator {
 public:
  NextflowTranslator() = default;
  explicit NextflowTranslator(NextflowTranslatorConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "nextflow"; }
  [[nodiscard]] ArgsStyle args_style() const override { return ArgsStyle::kList; }

  /// NextFlow is serverful: tasks get no api_url.
  void apply(Workflow& workflow) const override;

  /// Manifest: {"manifest": {...}, "processes": [category names]}.
  [[nodiscard]] json::Value translate(const Workflow& workflow) const override;

  /// The DSL2 script ("workflow { ... }" with process definitions).
  [[nodiscard]] std::string translate_to_text(const Workflow& workflow) const override;

  [[nodiscard]] const NextflowTranslatorConfig& config() const noexcept { return config_; }

 private:
  NextflowTranslatorConfig config_;
};

}  // namespace wfs::wfcommons
