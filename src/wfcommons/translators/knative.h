// The Knative Translator — the paper's headline WfCommons extension
// (§III-A): every task entry gains an "api_url" pointing at the wfbench
// Knative service, and "arguments" becomes the key/value object that maps
// directly onto the service's POST body.
#pragma once

#include "wfcommons/translators/translator.h"

namespace wfs::wfcommons {

struct KnativeTranslatorConfig {
  /// The deployed wfbench Knative service (paper excerpt line 20 uses a
  /// sslip.io magic-DNS URL of this shape).
  std::string service_url = "http://wfbench.knative-functions.10.0.0.1.sslip.io:80/wfbench";
  /// Shared-drive directory the functions read/write (the "workdir"
  /// request parameter).
  std::string workdir = "../data/wfbench-knative";
};

class KnativeTranslator final : public Translator {
 public:
  KnativeTranslator() = default;
  explicit KnativeTranslator(KnativeTranslatorConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "knative"; }
  [[nodiscard]] ArgsStyle args_style() const override { return ArgsStyle::kKeyValue; }
  void apply(Workflow& workflow) const override;

  [[nodiscard]] const KnativeTranslatorConfig& config() const noexcept { return config_; }

 private:
  KnativeTranslatorConfig config_;
};

}  // namespace wfs::wfcommons
