// Pegasus Translator — the WfCommons translator that predates the paper's
// Knative one (§III-A: "Currently, WfCommons supports Translators for
// Pegasus and NextFlow"). Included so the repository covers the full
// translator surface the paper builds on; emits a Pegasus-5-style workflow
// document (jobs with argument lists and uses[] file declarations), which
// serverful Pegasus deployments consume.
#pragma once

#include "wfcommons/translators/translator.h"

namespace wfs::wfcommons {

struct PegasusTranslatorConfig {
  std::string site = "condorpool";
  std::string container_image = "docker://wfcommons/wfbench:latest";
};

class PegasusTranslator final : public Translator {
 public:
  PegasusTranslator() = default;
  explicit PegasusTranslator(PegasusTranslatorConfig config) : config_(std::move(config)) {}

  [[nodiscard]] std::string name() const override { return "pegasus"; }
  [[nodiscard]] ArgsStyle args_style() const override { return ArgsStyle::kList; }

  /// Pegasus is serverful: tasks get no api_url.
  void apply(Workflow& workflow) const override;

  /// Emits {"pegasus": "5.0", "name": ..., "jobs": [...], "jobDependencies":
  /// [...], "replicaCatalog": {...}} — the Pegasus workflow-document shape.
  [[nodiscard]] json::Value translate(const Workflow& workflow) const override;

  [[nodiscard]] const PegasusTranslatorConfig& config() const noexcept { return config_; }

 private:
  PegasusTranslatorConfig config_;
};

}  // namespace wfs::wfcommons
