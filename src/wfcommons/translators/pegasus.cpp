#include "wfcommons/translators/pegasus.h"

#include "support/format.h"

namespace wfs::wfcommons {

void PegasusTranslator::apply(Workflow& workflow) const {
  for (Task& task : workflow.tasks()) task.api_url.clear();
}

json::Value PegasusTranslator::translate(const Workflow& workflow) const {
  json::Object document;
  document.set("pegasus", "5.0");
  document.set("name", workflow.name());

  // Replica catalog: the external inputs a planner must locate.
  json::Array replicas;
  for (const TaskFile& file : workflow.external_inputs()) {
    json::Object replica;
    replica.set("lfn", file.name);
    json::Array pfns;
    json::Object pfn;
    pfn.set("site", config_.site);
    pfn.set("pfn", "/inputs/" + file.name);
    pfns.emplace_back(std::move(pfn));
    replica.set("pfns", std::move(pfns));
    replicas.emplace_back(std::move(replica));
  }
  json::Object replica_catalog;
  replica_catalog.set("replicas", std::move(replicas));
  document.set("replicaCatalog", std::move(replica_catalog));

  json::Array jobs;
  json::Array dependencies;
  for (const Task& task : workflow.tasks()) {
    json::Object job;
    job.set("type", "job");
    job.set("name", task.category);
    job.set("id", task.name);
    json::Array arguments;
    arguments.emplace_back("--name=" + task.name);
    arguments.emplace_back(support::format("--percent-cpu={}", task.percent_cpu));
    arguments.emplace_back(support::format("--cpu-work={}", task.cpu_work));
    job.set("arguments", std::move(arguments));
    json::Array uses;
    for (const TaskFile& file : task.files) {
      json::Object use;
      use.set("lfn", file.name);
      use.set("type", file.link == TaskFile::Link::kOutput ? "output" : "input");
      use.set("sizeInBytes", file.size_bytes);
      uses.emplace_back(std::move(use));
    }
    job.set("uses", std::move(uses));
    jobs.emplace_back(std::move(job));

    if (!task.children.empty()) {
      json::Object dependency;
      dependency.set("id", task.name);
      json::Array children;
      for (const std::string& child : task.children) children.emplace_back(child);
      dependency.set("children", std::move(children));
      dependencies.emplace_back(std::move(dependency));
    }
  }
  document.set("jobs", std::move(jobs));
  document.set("jobDependencies", std::move(dependencies));

  json::Object site_catalog;
  site_catalog.set("site", config_.site);
  site_catalog.set("container", config_.container_image);
  document.set("siteCatalog", std::move(site_catalog));
  return json::Value(std::move(document));
}

}  // namespace wfs::wfcommons
