// Workflow intermediate representation — the WfCommons task-graph model.
//
// A Workflow is a DAG of synthetic compute tasks. Every task carries the
// wfbench knobs the paper's excerpt shows (percent-cpu, cpu-work, input and
// output files with byte sizes) plus category/id metadata. Translators (see
// translators/) turn this IR into platform-specific JSON; the serverless WFM
// (src/core/) consumes the translated form.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace wfs::wfcommons {

struct TaskFile {
  enum class Link { kInput, kOutput };
  Link link = Link::kInput;
  std::string name;
  std::uint64_t size_bytes = 0;

  friend bool operator==(const TaskFile&, const TaskFile&) = default;
};

struct Task {
  std::string name;      // unique, e.g. "blastall_00000002"
  std::string id;        // zero-padded ordinal, e.g. "00000002"
  std::string category;  // function type, e.g. "blastall"
  std::string type = "compute";
  std::string program = "wfbench.py";

  // wfbench stress parameters.
  double percent_cpu = 0.6;      // fraction of one core the CPU stress demands
  double cpu_work = 100.0;       // work units to burn
  std::uint64_t memory_bytes = 256ULL << 20;  // stressor --vm-bytes allocation
  int cores = 1;

  double runtime_seconds = 0.0;  // filled post-execution (0 in specs)

  std::vector<std::string> parents;
  std::vector<std::string> children;
  std::vector<TaskFile> files;

  /// HTTP endpoint of the function — empty until a translator assigns it
  /// (the paper's "api_url" extension).
  std::string api_url;

  [[nodiscard]] std::vector<const TaskFile*> inputs() const;
  [[nodiscard]] std::vector<const TaskFile*> outputs() const;
  [[nodiscard]] std::uint64_t input_bytes() const noexcept;
  [[nodiscard]] std::uint64_t output_bytes() const noexcept;
};

class Workflow {
 public:
  Workflow() = default;
  explicit Workflow(std::string name) : name_(std::move(name)) {}

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  void set_name(std::string name) { name_ = std::move(name); }

  /// Schema tag carried through serialization (WfCommons uses "1.5").
  [[nodiscard]] const std::string& schema_version() const noexcept { return schema_; }
  void set_schema_version(std::string v) { schema_ = std::move(v); }

  /// Adds a task; name must be unique. Returns a reference valid until the
  /// next add_task call.
  Task& add_task(Task task);

  /// Declares a parent -> child dependency (idempotent); both tasks must
  /// already exist. Keeps parents/children lists symmetric.
  void connect(std::string_view parent, std::string_view child);

  [[nodiscard]] std::size_t size() const noexcept { return tasks_.size(); }
  [[nodiscard]] bool empty() const noexcept { return tasks_.empty(); }
  [[nodiscard]] const std::vector<Task>& tasks() const noexcept { return tasks_; }
  /// Mutable access invalidates the name index (callers may add/rename).
  [[nodiscard]] std::vector<Task>& tasks() noexcept {
    index_dirty_ = true;
    return tasks_;
  }

  [[nodiscard]] const Task* find(std::string_view name) const noexcept;
  [[nodiscard]] Task* find(std::string_view name) noexcept;

  /// Tasks without parents / without children.
  [[nodiscard]] std::vector<const Task*> roots() const;
  [[nodiscard]] std::vector<const Task*> leaves() const;

  [[nodiscard]] std::size_t edge_count() const noexcept;

  /// Input files no task produces — must be staged before execution.
  [[nodiscard]] std::vector<TaskFile> external_inputs() const;

  /// Structural validation. Returns human-readable problems (empty = valid):
  ///  * duplicate task names, dangling parent/child references,
  ///  * asymmetric parent/child lists,
  ///  * cycles,
  ///  * a task consuming a file produced by a non-parent (the dataflow
  ///    condition the WFM's shared-drive check relies on),
  ///  * a file produced by two different tasks.
  [[nodiscard]] std::vector<std::string> validate() const;

 private:
  void rebuild_index() const;
  [[nodiscard]] static std::string edge_key(std::string_view parent, std::string_view child);

  std::string name_;
  std::string schema_ = "1.5";
  std::vector<Task> tasks_;
  // Lazy name -> index cache. add_task extends it incrementally (keeping
  // generation linear in the task count); only mutable tasks() access dirties
  // it and forces a rebuild.
  mutable std::unordered_map<std::string, std::size_t> index_;
  // Edge-presence caches, one per direction ("parent\x1fchild" keys), rebuilt
  // with the index. connect() consults them for O(1) idempotency instead of
  // scanning the adjacency lists; validate() uses them for linear-time
  // symmetry and dataflow checks.
  mutable std::unordered_set<std::string> child_edge_cache_;   // in parent's children
  mutable std::unordered_set<std::string> parent_edge_cache_;  // in child's parents
  mutable bool index_dirty_ = true;
};

/// Topological order of task indices (Kahn). Throws std::invalid_argument
/// when the workflow has a cycle.
[[nodiscard]] std::vector<std::size_t> topological_order(const Workflow& workflow);

}  // namespace wfs::wfcommons
