// WfChef — the WfCommons component that "uses the groups of workflow
// instances to generate recipes of scientific workflows for that type"
// (paper Figure 2). Given a corpus of instances from one family, WfChef
// learns:
//   * the level pattern — the sequence of per-category occupancy across
//     DAG levels, with "scalable" categories detected (those whose count
//     grows with instance size);
//   * per-category knob statistics (percent-cpu, cpu-work, memory,
//     output size), pooled over the corpus;
//   * the wiring pattern between adjacent categories (which category
//     feeds which, fan-in vs fan-out).
// The learned DerivedRecipe is a Recipe: it generates new instances of any
// requested size with the family's structure and knob distributions.
#pragma once

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "wfcommons/recipes/recipe.h"
#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

/// Pooled statistics of one function category across a corpus.
struct CategoryStats {
  std::string category;
  std::size_t observations = 0;
  double percent_cpu_mean = 0.0;
  double percent_cpu_min = 1.0;
  double percent_cpu_max = 0.0;
  double cpu_work_mean = 0.0;
  double cpu_work_stddev = 0.0;
  double output_bytes_mean = 0.0;
  std::uint64_t memory_bytes = 0;  // max observed (conservative)
  /// Mean size of the staged (externally provided) input each task of this
  /// category consumes; 0 when the category only reads produced files.
  double external_input_bytes = 0.0;
  /// Mean count per instance, and whether that count scaled with instance
  /// size across the corpus (the category WfChef replicates when asked for
  /// bigger instances).
  double mean_count_per_instance = 0.0;
  bool scalable = false;
  /// Level index (mode over the corpus) this category occupies.
  std::size_t level = 0;
};

/// Edge pattern: parent category -> child category with mean multiplicity.
struct WiringStats {
  std::string parent_category;
  std::string child_category;
  /// Mean number of child tasks per parent task (>= 1: fan-out) and mean
  /// parents per child (>= 1: fan-in).
  double children_per_parent = 0.0;
  double parents_per_child = 0.0;
};

/// The learned family profile.
struct FamilyProfile {
  std::string family;                 // e.g. "blast"
  std::size_t instances = 0;
  std::size_t levels = 0;
  std::vector<CategoryStats> categories;   // ordered by level, then name
  std::vector<WiringStats> wiring;

  [[nodiscard]] const CategoryStats* find_category(const std::string& name) const;
  [[nodiscard]] std::string to_string() const;
};

/// Learns a FamilyProfile from a non-empty corpus of same-family instances.
/// Throws std::invalid_argument when the corpus is empty or structurally
/// inconsistent (different level-category skeletons).
[[nodiscard]] FamilyProfile learn_profile(const std::string& family,
                                          const std::vector<Workflow>& corpus);

/// A Recipe backed by a learned profile: generates instances whose
/// scalable categories grow toward the requested size while fixed
/// categories keep their corpus counts, wired by the learned patterns.
class DerivedRecipe final : public Recipe {
 public:
  explicit DerivedRecipe(FamilyProfile profile);

  [[nodiscard]] std::string name() const override { return profile_.family; }
  [[nodiscard]] std::string display_name() const override;
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override;

  [[nodiscard]] const FamilyProfile& profile() const noexcept { return profile_; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options,
                support::Rng& rng) const override;

 private:
  FamilyProfile profile_;
};

/// Convenience: learn from the built-in WfInstances catalog entries of one
/// family (throws when the catalog has none).
[[nodiscard]] std::unique_ptr<DerivedRecipe> chef_from_instances(const std::string& family);

}  // namespace wfs::wfcommons
