// WfBench parameter adjustment: the paper stresses that WfCommons lets the
// experimenter tune CPU intensity and I/O per function after generation.
// apply_bench_spec rewrites those knobs over a generated workflow.
#pragma once

#include <optional>
#include <string>

#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

struct BenchSpec {
  /// Force every task's percent-cpu (unset: keep recipe draws).
  std::optional<double> percent_cpu;
  /// Multiply every task's cpu-work.
  double cpu_work_scale = 1.0;
  /// Multiply every file size (inputs and outputs).
  double data_scale = 1.0;
  /// Force every task's stressor allocation (unset: keep recipe values).
  std::optional<std::uint64_t> memory_bytes;
  /// Restrict the rewrite to one category (empty: all tasks).
  std::string category_filter;
};

/// Applies the spec in place; returns the number of tasks modified.
std::size_t apply_bench_spec(Workflow& workflow, const BenchSpec& spec);

}  // namespace wfs::wfcommons
