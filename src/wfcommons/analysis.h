// Workflow characterisation — the data behind the paper's Figure 3:
// DAG structure, functions per phase, and function counts by type.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

/// Level decomposition: level(t) = 1 + max(level(parents)), roots at 0.
/// These levels are exactly the "phases"/"steps" the paper's WFM executes
/// in lockstep. Tasks within a level keep workflow order.
[[nodiscard]] std::vector<std::vector<const Task*>> levels(const Workflow& workflow);

/// Number of functions per phase (Figure 3, middle row).
[[nodiscard]] std::vector<std::size_t> phase_histogram(const Workflow& workflow);

/// Function count per category name (Figure 3, bottom row). Ordered map so
/// output is deterministic.
[[nodiscard]] std::map<std::string, std::size_t> category_histogram(const Workflow& workflow);

struct DagStats {
  std::size_t tasks = 0;
  std::size_t edges = 0;
  std::size_t levels = 0;
  std::size_t max_width = 0;
  double mean_width = 0.0;
  std::size_t roots = 0;
  std::size_t leaves = 0;
  std::size_t categories = 0;
  std::uint64_t external_input_bytes = 0;
  std::uint64_t produced_bytes = 0;
  double total_cpu_work = 0.0;
  /// max_width / tasks — 1.0 means a single flat level.
  double density = 0.0;
};

[[nodiscard]] DagStats compute_stats(const Workflow& workflow);

/// The paper's behavioural split (§V-D): group 1 ("dense") workflows have
/// few phases dominated by one wide level of identical functions; group 2
/// ("layered") have many phases and diverse types. Classified structurally:
/// dense iff density >= 0.5 or levels <= 4.
enum class BehaviorGroup { kDense, kLayered };
[[nodiscard]] BehaviorGroup classify(const Workflow& workflow);
[[nodiscard]] std::string to_string(BehaviorGroup group);

/// Critical path: the dependency chain maximising total uncontended
/// compute time (cpu_work / percent_cpu at unit core speed) — the lower
/// bound on any paradigm's makespan, however many workers it has.
struct CriticalPath {
  std::vector<const Task*> tasks;  // root .. leaf along the longest chain
  double seconds = 0.0;            // uncontended compute time of the chain
};
[[nodiscard]] CriticalPath critical_path(const Workflow& workflow);

/// Multi-line ASCII rendering of structure per phase, e.g.
///   phase 0:    1 task   [split_fasta]
///   phase 1:   47 tasks  [blastall x47]
/// (the textual stand-in for Figure 3's DAG drawings).
[[nodiscard]] std::string render_structure(const Workflow& workflow);

}  // namespace wfs::wfcommons
