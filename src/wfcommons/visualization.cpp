#include "wfcommons/visualization.h"

#include <map>
#include <set>

#include "support/format.h"
#include "support/strings.h"
#include "wfcommons/analysis.h"

namespace wfs::wfcommons {
namespace {

// A qualitative palette (ColorBrewer Set3-ish) cycled over categories.
constexpr const char* kPalette[] = {
    "#8dd3c7", "#ffffb3", "#bebada", "#fb8072", "#80b1d3", "#fdb462",
    "#b3de69", "#fccde5", "#d9d9d9", "#bc80bd", "#ccebc5", "#ffed6f",
};

std::string sanitize(const std::string& name) {
  std::string out = "n_";
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9');
    out.push_back(ok ? c : '_');
  }
  return out;
}

}  // namespace

std::string to_dot(const Workflow& workflow, DotOptions options) {
  // Stable colour assignment in category-name order.
  std::map<std::string, std::string> color_of;
  {
    std::size_t index = 0;
    for (const auto& [category, count] : category_histogram(workflow)) {
      color_of[category] = kPalette[index++ % std::size(kPalette)];
    }
  }

  // Decide which (level, category) groups collapse into summary nodes.
  const auto by_level = levels(workflow);
  std::map<std::string, std::string> node_of_task;  // task -> dot node id
  std::string out = support::format("digraph \"{}\" {{\n", workflow.name());
  if (options.left_to_right) out += "  rankdir=LR;\n";
  out += "  node [style=filled, shape=box, fontname=\"Helvetica\"];\n";

  for (std::size_t level = 0; level < by_level.size(); ++level) {
    std::map<std::string, std::vector<const Task*>> groups;
    for (const Task* task : by_level[level]) groups[task->category].push_back(task);
    out += "  { rank=same;\n";
    for (const auto& [category, tasks] : groups) {
      const bool collapse =
          options.collapse_threshold > 0 && tasks.size() > options.collapse_threshold;
      if (collapse) {
        const std::string id = support::format("g_{}_{}", level, sanitize(category));
        out += support::format(
            "    {} [label=\"{} x{}\", fillcolor=\"{}\", peripheries=2];\n", id, category,
            tasks.size(), color_of[category]);
        for (const Task* task : tasks) node_of_task[task->name] = id;
      } else {
        for (const Task* task : tasks) {
          const std::string id = sanitize(task->name);
          out += support::format("    {} [label=\"{}\", fillcolor=\"{}\"];\n", id,
                                 task->name, color_of[category]);
          node_of_task[task->name] = id;
        }
      }
    }
    out += "  }\n";
  }

  // Edges, de-duplicated after collapsing.
  std::set<std::pair<std::string, std::string>> emitted;
  for (const Task& task : workflow.tasks()) {
    for (const std::string& child : task.children) {
      const std::string& from = node_of_task.at(task.name);
      const std::string& to = node_of_task.at(child);
      if (from == to) continue;  // intra-summary edges vanish
      if (!emitted.emplace(from, to).second) continue;
      if (options.edge_labels) {
        std::uint64_t bytes = 0;
        for (const TaskFile* file : task.outputs()) bytes += file->size_bytes;
        out += support::format("  {} -> {} [label=\"{}\"];\n", from, to,
                               support::human_bytes(bytes));
      } else {
        out += support::format("  {} -> {};\n", from, to);
      }
    }
  }
  out += "}\n";
  return out;
}

}  // namespace wfs::wfcommons
