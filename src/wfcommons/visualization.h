// DAG visualization — the artifact's generate_visualization.py analogue.
//
// Emits Graphviz DOT: one node per task, coloured by function category,
// ranked by execution phase, so `dot -Tpng workflow.dot` reproduces the
// left column of the paper's Figure 3.
#pragma once

#include <string>

#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

struct DotOptions {
  /// Collapse wide levels: categories with more than this many tasks in one
  /// level render as a single "name xN" summary node (0 = never collapse).
  std::size_t collapse_threshold = 12;
  /// Include file-size labels on edges.
  bool edge_labels = false;
  bool left_to_right = false;  // rankdir=LR instead of TB
};

/// Renders the workflow as a Graphviz digraph.
[[nodiscard]] std::string to_dot(const Workflow& workflow, DotOptions options = {});

}  // namespace wfs::wfcommons
