#include "wfcommons/generator.h"

namespace wfs::wfcommons {

Workflow WorkflowGenerator::generate(std::string_view recipe, std::size_t num_tasks,
                                     std::uint64_t seed) const {
  GenerateOptions options = defaults_;
  options.num_tasks = num_tasks;
  options.seed = seed;
  return make_recipe(recipe)->generate(options);
}

Workflow WorkflowGenerator::generate(std::string_view recipe) const {
  return make_recipe(recipe)->generate(defaults_);
}

std::vector<Workflow> WorkflowGenerator::generate_suite(std::size_t num_tasks,
                                                        std::uint64_t seed) const {
  std::vector<Workflow> suite;
  for (const std::string& name : recipe_names()) {
    suite.push_back(generate(name, num_tasks, seed));
  }
  return suite;
}

}  // namespace wfs::wfcommons
