#include "wfcommons/bench_spec.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfs::wfcommons {

std::size_t apply_bench_spec(Workflow& workflow, const BenchSpec& spec) {
  if (spec.cpu_work_scale <= 0.0) throw std::invalid_argument("cpu_work_scale must be positive");
  if (spec.data_scale <= 0.0) throw std::invalid_argument("data_scale must be positive");
  if (spec.percent_cpu.has_value() && (*spec.percent_cpu <= 0.0 || *spec.percent_cpu > 1.0)) {
    throw std::invalid_argument("percent_cpu must be in (0, 1]");
  }

  std::size_t modified = 0;
  for (Task& task : workflow.tasks()) {
    if (!spec.category_filter.empty() && task.category != spec.category_filter) continue;
    ++modified;
    if (spec.percent_cpu) task.percent_cpu = *spec.percent_cpu;
    task.cpu_work *= spec.cpu_work_scale;
    if (spec.memory_bytes) task.memory_bytes = *spec.memory_bytes;
    for (TaskFile& file : task.files) {
      file.size_bytes = static_cast<std::uint64_t>(
          std::max(1.0, std::round(static_cast<double>(file.size_bytes) * spec.data_scale)));
    }
  }
  return modified;
}

}  // namespace wfs::wfcommons
