#include "wfcommons/wfchef.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <stdexcept>
#include <unordered_map>

#include "support/format.h"
#include "support/strings.h"
#include "wfcommons/analysis.h"
#include "wfcommons/wfinstances.h"

namespace wfs::wfcommons {
namespace {

struct CategoryAccumulator {
  std::size_t observations = 0;
  double percent_cpu_sum = 0.0;
  double percent_cpu_min = 1.0;
  double percent_cpu_max = 0.0;
  double cpu_work_sum = 0.0;
  double cpu_work_sq_sum = 0.0;
  double output_bytes_sum = 0.0;
  std::uint64_t memory_bytes_max = 0;
  double external_bytes_sum = 0.0;
  std::size_t external_observations = 0;
  std::size_t count_across_corpus = 0;
  std::size_t level = 0;
};

}  // namespace

const CategoryStats* FamilyProfile::find_category(const std::string& name) const {
  for (const CategoryStats& stats : categories) {
    if (stats.category == name) return &stats;
  }
  return nullptr;
}

std::string FamilyProfile::to_string() const {
  std::string out = support::format("profile '{}' learned from {} instance(s), {} levels\n",
                                    family, instances, levels);
  for (const CategoryStats& stats : categories) {
    out += support::format(
        "  L{} {:<42} n/instance={:.1f}{} percent-cpu={:.2f} cpu-work={:.1f} out={}\n",
        stats.level, stats.category, stats.mean_count_per_instance,
        stats.scalable ? " (scalable)" : "          ", stats.percent_cpu_mean,
        stats.cpu_work_mean,
        support::human_bytes(static_cast<std::uint64_t>(stats.output_bytes_mean)));
  }
  for (const WiringStats& wiring : wiring) {
    out += support::format("  edge {} -> {} ({:.1f} children/parent, {:.1f} parents/child)\n",
                           wiring.parent_category, wiring.child_category,
                           wiring.children_per_parent, wiring.parents_per_child);
  }
  return out;
}

FamilyProfile learn_profile(const std::string& family, const std::vector<Workflow>& corpus) {
  if (corpus.empty()) throw std::invalid_argument("WfChef: empty corpus for " + family);

  std::map<std::string, CategoryAccumulator> categories;
  struct EdgeAccumulator {
    std::size_t edges = 0;
    std::size_t parent_tasks = 0;
    std::size_t child_tasks = 0;
  };
  std::map<std::pair<std::string, std::string>, EdgeAccumulator> edges;
  std::size_t max_levels = 0;

  for (const Workflow& wf : corpus) {
    if (!wf.validate().empty()) {
      throw std::invalid_argument("WfChef: corpus instance fails validation: " + wf.name());
    }
    const auto by_level = levels(wf);
    max_levels = std::max(max_levels, by_level.size());
    std::map<std::string, std::size_t> counts;
    for (std::size_t level = 0; level < by_level.size(); ++level) {
      for (const Task* task : by_level[level]) {
        CategoryAccumulator& acc = categories[task->category];
        // Structural consistency: one family puts a category at one level.
        if (acc.observations > 0 && acc.level != level) {
          throw std::invalid_argument(support::format(
              "WfChef: category {} appears at levels {} and {} across the corpus",
              task->category, acc.level, level));
        }
        acc.level = level;
        ++acc.observations;
        ++counts[task->category];
        acc.percent_cpu_sum += task->percent_cpu;
        acc.percent_cpu_min = std::min(acc.percent_cpu_min, task->percent_cpu);
        acc.percent_cpu_max = std::max(acc.percent_cpu_max, task->percent_cpu);
        acc.cpu_work_sum += task->cpu_work;
        acc.cpu_work_sq_sum += task->cpu_work * task->cpu_work;
        acc.output_bytes_sum += static_cast<double>(task->output_bytes());
        acc.memory_bytes_max = std::max(acc.memory_bytes_max, task->memory_bytes);
      }
    }
    for (const auto& [category, count] : counts) {
      categories[category].count_across_corpus += count;
    }
    // External inputs, attributed to their consuming category.
    std::unordered_map<std::string, const Task*> producer_of;
    for (const Task& task : wf.tasks()) {
      for (const TaskFile* out : task.outputs()) producer_of[out->name] = &task;
    }
    for (const Task& task : wf.tasks()) {
      for (const TaskFile* in : task.inputs()) {
        if (!producer_of.contains(in->name)) {
          CategoryAccumulator& acc = categories[task.category];
          acc.external_bytes_sum += static_cast<double>(in->size_bytes);
          ++acc.external_observations;
        }
      }
    }
    // Wiring pattern.
    std::map<std::pair<std::string, std::string>, std::size_t> instance_edges;
    for (const Task& task : wf.tasks()) {
      for (const std::string& child : task.children) {
        ++instance_edges[{task.category, wf.find(child)->category}];
      }
    }
    for (const auto& [pair, count] : instance_edges) {
      EdgeAccumulator& acc = edges[pair];
      acc.edges += count;
      acc.parent_tasks += counts[pair.first];
      acc.child_tasks += counts[pair.second];
    }
  }

  FamilyProfile profile;
  profile.family = family;
  profile.instances = corpus.size();
  profile.levels = max_levels;
  for (const auto& [name, acc] : categories) {
    CategoryStats stats;
    stats.category = name;
    stats.observations = acc.observations;
    const double n = static_cast<double>(acc.observations);
    stats.percent_cpu_mean = acc.percent_cpu_sum / n;
    stats.percent_cpu_min = acc.percent_cpu_min;
    stats.percent_cpu_max = acc.percent_cpu_max;
    stats.cpu_work_mean = acc.cpu_work_sum / n;
    const double variance =
        std::max(0.0, acc.cpu_work_sq_sum / n - stats.cpu_work_mean * stats.cpu_work_mean);
    stats.cpu_work_stddev = std::sqrt(variance);
    stats.output_bytes_mean = acc.output_bytes_sum / n;
    stats.memory_bytes = acc.memory_bytes_max;
    stats.mean_count_per_instance =
        static_cast<double>(acc.count_across_corpus) / static_cast<double>(corpus.size());
    stats.scalable = stats.mean_count_per_instance >= 2.0;
    stats.level = acc.level;
    profile.categories.push_back(std::move(stats));
  }
  std::sort(profile.categories.begin(), profile.categories.end(),
            [](const CategoryStats& a, const CategoryStats& b) {
              if (a.level != b.level) return a.level < b.level;
              return a.category < b.category;
            });
  for (const auto& [pair, acc] : edges) {
    WiringStats wiring;
    wiring.parent_category = pair.first;
    wiring.child_category = pair.second;
    wiring.children_per_parent =
        static_cast<double>(acc.edges) / static_cast<double>(acc.parent_tasks);
    wiring.parents_per_child =
        static_cast<double>(acc.edges) / static_cast<double>(acc.child_tasks);
    profile.wiring.push_back(std::move(wiring));
  }
  for (CategoryStats& stats : profile.categories) {
    const CategoryAccumulator& acc = categories.at(stats.category);
    if (acc.external_observations > 0) {
      stats.external_input_bytes =
          acc.external_bytes_sum / static_cast<double>(acc.external_observations);
    }
  }
  return profile;
}

DerivedRecipe::DerivedRecipe(FamilyProfile profile) : profile_(std::move(profile)) {
  if (profile_.categories.empty()) {
    throw std::invalid_argument("DerivedRecipe: profile has no categories");
  }
}

std::string DerivedRecipe::display_name() const {
  std::string name = profile_.family;
  if (!name.empty()) name[0] = static_cast<char>(std::toupper(name[0]));
  return name + "Chef";
}

std::string DerivedRecipe::description() const {
  return support::format(
      "WfChef-derived recipe for the '{}' family, learned from {} curated instance(s): {} "
      "categories over {} levels",
      profile_.family, profile_.instances, profile_.categories.size(), profile_.levels);
}

std::size_t DerivedRecipe::min_tasks() const {
  std::size_t fixed = 0;
  std::size_t scalable = 0;
  for (const CategoryStats& stats : profile_.categories) {
    if (stats.scalable) {
      ++scalable;  // at least one task each
    } else {
      fixed += static_cast<std::size_t>(std::lround(stats.mean_count_per_instance));
    }
  }
  return fixed + scalable;
}

void DerivedRecipe::populate(Workflow& wf, const GenerateOptions& options,
                             support::Rng& rng) const {
  // 1. Decide per-category counts: fixed categories keep their corpus
  //    counts; scalable ones share the remaining budget proportionally.
  std::size_t fixed_total = 0;
  double scalable_weight = 0.0;
  for (const CategoryStats& stats : profile_.categories) {
    if (stats.scalable) {
      scalable_weight += stats.mean_count_per_instance;
    } else {
      fixed_total += static_cast<std::size_t>(std::lround(stats.mean_count_per_instance));
    }
  }
  const std::size_t budget =
      options.num_tasks > fixed_total ? options.num_tasks - fixed_total : 0;

  std::map<std::string, std::size_t> counts;
  for (const CategoryStats& stats : profile_.categories) {
    if (stats.scalable) {
      const double share = stats.mean_count_per_instance / scalable_weight;
      counts[stats.category] =
          std::max<std::size_t>(1, static_cast<std::size_t>(std::lround(
                                       share * static_cast<double>(budget))));
    } else {
      counts[stats.category] = std::max<std::size_t>(
          1, static_cast<std::size_t>(std::lround(stats.mean_count_per_instance)));
    }
  }

  // 2. Materialise tasks level by level with knobs drawn from the profile.
  std::map<std::string, std::vector<std::string>> tasks_of;
  std::uint64_t ordinal = 1;
  const double work_scale = options.cpu_work / 100.0;
  for (const CategoryStats& stats : profile_.categories) {
    for (std::size_t i = 0; i < counts[stats.category]; ++i) {
      Task task;
      task.id = support::pad_id(ordinal++, 8);
      task.name = stats.category + "_" + task.id;
      task.category = stats.category;
      task.percent_cpu = std::round(rng.uniform_real(stats.percent_cpu_min,
                                                     stats.percent_cpu_max) *
                                    100.0) /
                         100.0;
      task.cpu_work = work_scale * rng.truncated_normal(
                                       stats.cpu_work_mean,
                                       std::max(stats.cpu_work_stddev, 1e-9),
                                       stats.cpu_work_mean * 0.5, stats.cpu_work_mean * 2.0);
      task.memory_bytes = stats.memory_bytes;
      const double out_bytes = stats.output_bytes_mean * options.data_scale;
      task.files.push_back(TaskFile{TaskFile::Link::kOutput, task.name + "_output.txt",
                                    static_cast<std::uint64_t>(std::max(1.0, out_bytes))});
      if (stats.external_input_bytes > 0.0) {
        task.files.push_back(
            TaskFile{TaskFile::Link::kInput, task.name + "_staged.in",
                     static_cast<std::uint64_t>(stats.external_input_bytes *
                                                options.data_scale)});
      }
      tasks_of[stats.category].push_back(task.name);
      wf.add_task(std::move(task));
    }
  }

  // 3. Re-create the wiring pattern.
  const auto feed = [&wf](const std::string& parent, const std::string& child) {
    wf.connect(parent, child);
    Task* p = wf.find(parent);
    Task* c = wf.find(child);
    for (const TaskFile* out : p->outputs()) {
      const bool already =
          std::any_of(c->files.begin(), c->files.end(), [&](const TaskFile& f) {
            return f.link == TaskFile::Link::kInput && f.name == out->name;
          });
      if (!already) {
        c->files.push_back(TaskFile{TaskFile::Link::kInput, out->name, out->size_bytes});
      }
    }
  };
  for (const WiringStats& wiring : profile_.wiring) {
    const auto& parents = tasks_of[wiring.parent_category];
    const auto& children = tasks_of[wiring.child_category];
    const std::size_t p = parents.size();
    const std::size_t c = children.size();
    if (p == 0 || c == 0) continue;
    if (c == 1) {
      for (const std::string& parent : parents) feed(parent, children[0]);
    } else if (p == 1) {
      for (const std::string& child : children) feed(parents[0], child);
    } else if (p == c) {
      for (std::size_t i = 0; i < p; ++i) feed(parents[i], children[i]);
    } else if (p > c) {
      // Group fan-in: parents distributed round-robin over children.
      for (std::size_t i = 0; i < p; ++i) feed(parents[i], children[i % c]);
    } else {
      // Fan-out: children distributed round-robin over parents.
      for (std::size_t i = 0; i < c; ++i) feed(parents[i % p], children[i]);
    }
  }
}

std::unique_ptr<DerivedRecipe> chef_from_instances(const std::string& family) {
  std::vector<Workflow> corpus;
  for (const InstanceInfo& info : instance_catalog()) {
    if (info.family == family) corpus.push_back(load_instance(info.name));
  }
  if (corpus.empty()) {
    throw std::invalid_argument("WfChef: no curated instances for family " + family);
  }
  return std::make_unique<DerivedRecipe>(learn_profile(family, corpus));
}

}  // namespace wfs::wfcommons
