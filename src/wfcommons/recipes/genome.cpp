#include "wfcommons/recipes/recipes.h"

#include <algorithm>

#include "support/format.h"

namespace wfs::wfcommons {
namespace {

// Populations analysed per chromosome (ALL/EUR in the small 1000-genome
// instances): each gets one mutation_overlap and one frequency task.
constexpr std::size_t kPopulations = 2;

const CategoryProfile kIndividuals{
    .work_scale = 1.0,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.75,
    .percent_cpu_hi = 0.95,
    .output_bytes = 3 * 1024 * 1024,
    .output_jitter = 0.25,
    .memory_bytes = 384ULL << 20,
};
const CategoryProfile kIndividualsMerge{
    .work_scale = 0.3,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 24 * 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 512ULL << 20,
};
const CategoryProfile kSifting{
    .work_scale = 0.4,
    .work_jitter = 0.15,
    .percent_cpu_lo = 0.6,
    .percent_cpu_hi = 0.8,
    .output_bytes = 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 192ULL << 20,
};
const CategoryProfile kMutationOverlap{
    .work_scale = 0.6,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.7,
    .percent_cpu_hi = 0.9,
    .output_bytes = 512 * 1024,
    .output_jitter = 0.25,
    .memory_bytes = 256ULL << 20,
};
const CategoryProfile kFrequency{
    .work_scale = 0.7,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.7,
    .percent_cpu_hi = 0.9,
    .output_bytes = 768 * 1024,
    .output_jitter = 0.25,
    .memory_bytes = 256ULL << 20,
};

}  // namespace

std::string GenomeRecipe::description() const {
  return "1000-genomes population analysis: per chromosome, parallel "
         "individuals tasks merge into individuals_merge which joins a "
         "sifting task to drive per-population mutation_overlap and "
         "frequency analyses.";
}

void GenomeRecipe::populate(Workflow& wf, const GenerateOptions& options,
                            support::Rng& rng) const {
  RecipeBuilder builder(wf, options, rng);
  // Per chromosome: K individuals + merge + sifting + 2*kPopulations.
  const std::size_t fixed_per_chrom = 2 + 2 * kPopulations;
  const std::size_t chromosomes =
      std::clamp<std::size_t>(options.num_tasks / 30, 1, 22);
  const std::size_t budget = options.num_tasks / chromosomes;
  const std::size_t individuals =
      budget > fixed_per_chrom ? budget - fixed_per_chrom : 1;

  for (std::size_t chrom = 0; chrom < chromosomes; ++chrom) {
    const std::string merge = builder.add_task("individuals_merge", kIndividualsMerge);
    for (std::size_t k = 0; k < individuals; ++k) {
      const std::string ind = builder.add_task("individuals", kIndividuals);
      builder.feed_external(ind, support::format("chr{}_slice_{}.vcf", chrom + 1, k),
                            12ULL << 20);
      builder.feed(ind, merge);
    }
    const std::string sifting = builder.add_task("sifting", kSifting);
    builder.feed_external(sifting, support::format("chr{}_annotations.vcf", chrom + 1),
                          4ULL << 20);
    for (std::size_t pop = 0; pop < kPopulations; ++pop) {
      const std::string overlap = builder.add_task("mutation_overlap", kMutationOverlap);
      builder.feed(merge, overlap);
      builder.feed(sifting, overlap);
      const std::string frequency = builder.add_task("frequency", kFrequency);
      builder.feed(merge, frequency);
      builder.feed(sifting, frequency);
    }
  }
}

}  // namespace wfs::wfcommons
