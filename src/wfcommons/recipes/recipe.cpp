#include "wfcommons/recipes/recipe.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

#include "support/format.h"
#include "support/strings.h"
#include "wfcommons/recipes/recipes.h"

namespace wfs::wfcommons {

Workflow Recipe::generate(const GenerateOptions& options) const {
  GenerateOptions effective = options;
  const double scale = std::max(effective.scale_factor, 1.0);
  effective.num_tasks =
      static_cast<std::size_t>(static_cast<double>(effective.num_tasks) * scale);
  effective.num_tasks = std::max(effective.num_tasks, min_tasks());
  support::Rng rng(effective.seed);

  Workflow workflow(support::format("{}Recipe-{}-{}", display_name(),
                                    static_cast<std::int64_t>(effective.cpu_work),
                                    effective.num_tasks));
  populate(workflow, effective, rng);

  const std::vector<std::string> problems = workflow.validate();
  if (!problems.empty()) {
    throw std::logic_error(
        support::format("recipe {} generated invalid workflow: {}", name(), problems.front()));
  }
  return workflow;
}

RecipeBuilder::RecipeBuilder(Workflow& workflow, const GenerateOptions& options,
                             support::Rng& rng)
    : workflow_(workflow), options_(options), rng_(rng) {}

std::string RecipeBuilder::add_task(const std::string& category,
                                    const CategoryProfile& profile) {
  Task task;
  task.id = support::pad_id(counter_++, 8);
  task.name = category + "_" + task.id;
  task.category = category;
  task.percent_cpu = rng_.uniform_real(profile.percent_cpu_lo, profile.percent_cpu_hi);
  // Round percent-cpu to 2 decimals like the WfCommons instances do.
  task.percent_cpu = std::round(task.percent_cpu * 100.0) / 100.0;
  const double work_mean = options_.cpu_work * profile.work_scale;
  task.cpu_work = rng_.truncated_normal(work_mean, work_mean * profile.work_jitter,
                                        work_mean * 0.25, work_mean * 4.0);
  task.memory_bytes = profile.memory_bytes;

  const double size_mean = static_cast<double>(profile.output_bytes) * options_.data_scale;
  const double size =
      rng_.truncated_normal(size_mean, size_mean * profile.output_jitter, size_mean * 0.2,
                            size_mean * 4.0);
  TaskFile output;
  output.link = TaskFile::Link::kOutput;
  output.name = task.name + "_output.txt";
  output.size_bytes = static_cast<std::uint64_t>(std::max(1.0, size));
  task.files.push_back(std::move(output));

  const std::string name = task.name;
  workflow_.add_task(std::move(task));
  return name;
}

void RecipeBuilder::feed(const std::string& parent, const std::string& child) {
  Task* p = workflow_.find(parent);
  Task* c = workflow_.find(child);
  if (p == nullptr || c == nullptr) {
    throw std::invalid_argument("RecipeBuilder::feed: unknown task");
  }
  workflow_.connect(parent, child);
  // Do not duplicate when a diamond wiring feeds the same file twice. The
  // builder-side name set keeps this O(1) per file (every input addition
  // flows through feed/feed_external, so the set mirrors c->files exactly).
  std::unordered_set<std::string>& seen = input_names_[child];
  for (const TaskFile* out : p->outputs()) {
    if (seen.insert(out->name).second) {
      c->files.push_back(TaskFile{TaskFile::Link::kInput, out->name, out->size_bytes});
    }
  }
}

void RecipeBuilder::feed_external(const std::string& task, const std::string& file,
                                  std::uint64_t size) {
  Task* t = workflow_.find(task);
  if (t == nullptr) throw std::invalid_argument("RecipeBuilder::feed_external: unknown task");
  input_names_[task].insert(file);
  t->files.push_back(TaskFile{
      TaskFile::Link::kInput, file,
      static_cast<std::uint64_t>(static_cast<double>(size) * options_.data_scale)});
}

std::vector<std::string> recipe_names() {
  return {"blast", "bwa", "cycles", "epigenomics", "genome", "seismology", "srasearch"};
}

std::unique_ptr<Recipe> make_recipe(std::string_view name) {
  const std::string key = support::to_lower(name);
  if (key == "blast") return std::make_unique<BlastRecipe>();
  if (key == "bwa") return std::make_unique<BwaRecipe>();
  if (key == "cycles") return std::make_unique<CyclesRecipe>();
  if (key == "epigenomics") return std::make_unique<EpigenomicsRecipe>();
  if (key == "genome" || key == "1000genome" || key == "genomes") {
    return std::make_unique<GenomeRecipe>();
  }
  if (key == "seismology") return std::make_unique<SeismologyRecipe>();
  if (key == "srasearch") return std::make_unique<SrasearchRecipe>();
  throw std::invalid_argument("unknown recipe: " + key);
}

std::vector<std::unique_ptr<Recipe>> all_recipes() {
  std::vector<std::unique_ptr<Recipe>> out;
  for (const std::string& name : recipe_names()) out.push_back(make_recipe(name));
  return out;
}

}  // namespace wfs::wfcommons
