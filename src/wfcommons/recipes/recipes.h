// The seven workflow families the paper evaluates (§V-A, Figure 3):
// Blast, BWA, Cycles, Epigenomics, Genome(1000genome), Seismology,
// Srasearch. Structural patterns follow the WfInstances corpus topologies.
//
// The paper groups them by behaviour (§V-D):
//  * group 1 — Blast, BWA, Genome, Seismology, Srasearch: few dense phases,
//    many identical functions invoked simultaneously;
//  * group 2 — Cycles, Epigenomics: many phases, diverse function types,
//    narrower levels.
#pragma once

#include "wfcommons/recipes/recipe.h"

namespace wfs::wfcommons {

/// Bioinformatics sequence search: split_fasta -> blastall xN -> two merges
/// (cat_blast, cat). 3 phases, one very wide level.
class BlastRecipe final : public Recipe {
 public:
  [[nodiscard]] std::string name() const override { return "blast"; }
  [[nodiscard]] std::string display_name() const override { return "Blast"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override { return 4; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options, support::Rng& rng) const override;
};

/// Burrows-Wheeler alignment: {bwa_index, fastq_reduce} -> bwa xN ->
/// bwa_concat. 3 phases, dense.
class BwaRecipe final : public Recipe {
 public:
  [[nodiscard]] std::string name() const override { return "bwa"; }
  [[nodiscard]] std::string display_name() const override { return "Bwa"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override { return 4; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options, support::Rng& rng) const override;
};

/// Agroecosystem simulation sweep: per land unit, baseline_cycles ->
/// cycles xF -> fertilizer_increase_output xF -> summary; global
/// cycles_plots fan-in. 5 phases, moderate widths, diverse categories
/// (group 2).
class CyclesRecipe final : public Recipe {
 public:
  [[nodiscard]] std::string name() const override { return "cycles"; }
  [[nodiscard]] std::string display_name() const override { return "Cycles"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override { return 7; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options, support::Rng& rng) const override;
};

/// DNA methylation pipeline: per lane, fastqsplit -> W parallel 4-stage
/// chains (filter_contams -> sol2sanger -> fast2bfq -> map) -> map_merge;
/// then global map_merge -> chr21 -> pileup. ~9 phases (group 2).
class EpigenomicsRecipe final : public Recipe {
 public:
  [[nodiscard]] std::string name() const override { return "epigenomics"; }
  [[nodiscard]] std::string display_name() const override { return "Epigenomics"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override { return 9; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options, support::Rng& rng) const override;
};

/// 1000-genomes population analysis: per chromosome, individuals xK +
/// sifting -> individuals_merge -> {mutation_overlap, frequency} per
/// population. 3 phases, dense.
class GenomeRecipe final : public Recipe {
 public:
  [[nodiscard]] std::string name() const override { return "genome"; }
  [[nodiscard]] std::string display_name() const override { return "Genome"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override { return 7; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options, support::Rng& rng) const override;
};

/// Seismic source inversion: sG1IterDecon xN -> wrapper_siftSTFByMisfit.
/// 2 phases, the densest family.
class SeismologyRecipe final : public Recipe {
 public:
  [[nodiscard]] std::string name() const override { return "seismology"; }
  [[nodiscard]] std::string display_name() const override { return "Seismology"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override { return 2; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options, support::Rng& rng) const override;
};

/// Sequence-read-archive search: makeblastdb + K chains of prefetch ->
/// fasterq_dump -> blastn, merged by cat_output. 4 phases, dense chains.
class SrasearchRecipe final : public Recipe {
 public:
  [[nodiscard]] std::string name() const override { return "srasearch"; }
  [[nodiscard]] std::string display_name() const override { return "Srasearch"; }
  [[nodiscard]] std::string description() const override;
  [[nodiscard]] std::size_t min_tasks() const override { return 5; }

 protected:
  void populate(Workflow& wf, const GenerateOptions& options, support::Rng& rng) const override;
};

}  // namespace wfs::wfcommons
