#include "wfcommons/recipes/recipes.h"

#include <algorithm>

#include "support/format.h"

namespace wfs::wfcommons {
namespace {

const CategoryProfile kFastqSplit{
    .work_scale = 0.4,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 512 * 1024,
    .output_jitter = 0.15,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kFilterContams{
    .work_scale = 0.5,
    .work_jitter = 0.15,
    .percent_cpu_lo = 0.6,
    .percent_cpu_hi = 0.85,
    .output_bytes = 384 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 160ULL << 20,
};
const CategoryProfile kSol2Sanger{
    .work_scale = 0.3,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.75,
    .output_bytes = 384 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kFast2Bfq{
    .work_scale = 0.3,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.75,
    .output_bytes = 256 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kMap{
    .work_scale = 1.2,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.8,
    .percent_cpu_hi = 0.95,
    .output_bytes = 640 * 1024,
    .output_jitter = 0.25,
    .memory_bytes = 512ULL << 20,
};
const CategoryProfile kMapMerge{
    .work_scale = 0.25,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 4 * 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 256ULL << 20,
};
const CategoryProfile kChr21{
    .work_scale = 0.35,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.6,
    .percent_cpu_hi = 0.8,
    .output_bytes = 1024 * 1024,
    .output_jitter = 0.15,
    .memory_bytes = 192ULL << 20,
};
const CategoryProfile kPileup{
    .work_scale = 0.5,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.6,
    .percent_cpu_hi = 0.85,
    .output_bytes = 2 * 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 256ULL << 20,
};

}  // namespace

std::string EpigenomicsRecipe::description() const {
  return "DNA methylation (Epigenomics): per sequencing lane, fastqsplit "
         "fans into parallel 4-stage chains (filter_contams -> sol2sanger "
         "-> fast2bfq -> map) merged per lane, then globally, followed by "
         "chr21 and pileup — the deepest family (paper group 2).";
}

void EpigenomicsRecipe::populate(Workflow& wf, const GenerateOptions& options,
                                 support::Rng& rng) const {
  RecipeBuilder builder(wf, options, rng);
  // Global tail: map_merge(global) + chr21 + pileup = 3 tasks.
  // Per lane: fastqsplit + 4*W chain tasks + map_merge = 4W + 2.
  const std::size_t lanes =
      std::clamp<std::size_t>(options.num_tasks / 40, 1, 4);
  const std::size_t chain_budget =
      (options.num_tasks - 3 - 2 * lanes) / (4 * lanes);
  const std::size_t chains = std::max<std::size_t>(1, chain_budget);

  const std::string global_merge = builder.add_task("map_merge_global", kMapMerge);
  const std::string chr21 = builder.add_task("chr21", kChr21);
  const std::string pileup = builder.add_task("pileup", kPileup);
  builder.feed(global_merge, chr21);
  builder.feed(chr21, pileup);

  for (std::size_t lane = 0; lane < lanes; ++lane) {
    const std::string split = builder.add_task("fastqsplit", kFastqSplit);
    builder.feed_external(split, support::format("lane_{}.sfq", lane), 16ULL << 20);
    const std::string lane_merge = builder.add_task("map_merge", kMapMerge);
    for (std::size_t c = 0; c < chains; ++c) {
      const std::string filter = builder.add_task("filter_contams", kFilterContams);
      builder.feed(split, filter);
      const std::string sanger = builder.add_task("sol2sanger", kSol2Sanger);
      builder.feed(filter, sanger);
      const std::string bfq = builder.add_task("fast2bfq", kFast2Bfq);
      builder.feed(sanger, bfq);
      const std::string map = builder.add_task("map", kMap);
      builder.feed(bfq, map);
      builder.feed(map, lane_merge);
    }
    builder.feed(lane_merge, global_merge);
  }
}

}  // namespace wfs::wfcommons
