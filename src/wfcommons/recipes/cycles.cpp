#include "wfcommons/recipes/recipes.h"

#include <algorithm>

#include "support/format.h"

namespace wfs::wfcommons {
namespace {

// Fertilizer-sweep factor: each land unit runs the Cycles crop simulator at
// kFertilizerLevels fertilization rates.
constexpr std::size_t kFertilizerLevels = 4;

const CategoryProfile kBaseline{
    .work_scale = 0.8,
    .work_jitter = 0.15,
    .percent_cpu_lo = 0.7,
    .percent_cpu_hi = 0.9,
    .output_bytes = 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 256ULL << 20,
};
const CategoryProfile kCycles{
    .work_scale = 1.0,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.7,
    .percent_cpu_hi = 0.95,
    .output_bytes = 2 * 1024 * 1024,
    .output_jitter = 0.25,
    .memory_bytes = 320ULL << 20,
};
const CategoryProfile kFertilizerIncrease{
    .work_scale = 0.35,
    .work_jitter = 0.15,
    .percent_cpu_lo = 0.6,
    .percent_cpu_hi = 0.8,
    .output_bytes = 256 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kSummary{
    .work_scale = 0.25,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 128 * 1024,
    .output_jitter = 0.15,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kPlots{
    .work_scale = 0.3,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 4 * 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 256ULL << 20,
};

}  // namespace

std::string CyclesRecipe::description() const {
  return "Agroecosystem simulation sweep (Cycles): per land unit, a "
         "baseline run fans into a fertilizer sweep whose increase analyses "
         "are summarised per unit and plotted globally — many phases, "
         "moderate widths (paper group 2).";
}

void CyclesRecipe::populate(Workflow& wf, const GenerateOptions& options,
                            support::Rng& rng) const {
  RecipeBuilder builder(wf, options, rng);
  // Tasks per land unit: baseline + F cycles + F increase + 1 summary.
  const std::size_t per_unit = 2 + 2 * kFertilizerLevels;
  const std::size_t units = std::max<std::size_t>(1, (options.num_tasks - 1) / per_unit);

  const std::string plots = builder.add_task("cycles_plots", kPlots);

  for (std::size_t u = 0; u < units; ++u) {
    const std::string baseline = builder.add_task("baseline_cycles", kBaseline);
    builder.feed_external(baseline, support::format("land_unit_{}.soil", u), 2ULL << 20);
    builder.feed_external(baseline, support::format("weather_{}.wth", u), 6ULL << 20);

    const std::string summary =
        builder.add_task("cycles_fertilizer_increase_output_summary", kSummary);
    for (std::size_t f = 0; f < kFertilizerLevels; ++f) {
      const std::string cycles = builder.add_task("cycles", kCycles);
      builder.feed(baseline, cycles);
      const std::string increase =
          builder.add_task("cycles_fertilizer_increase_output", kFertilizerIncrease);
      builder.feed(cycles, increase);
      builder.feed(increase, summary);
    }
    builder.feed(summary, plots);
  }
}

}  // namespace wfs::wfcommons
