#include "wfcommons/recipes/recipes.h"

#include <algorithm>

#include "support/format.h"

namespace wfs::wfcommons {
namespace {

const CategoryProfile kMakeBlastDb{
    .work_scale = 0.5,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.6,
    .percent_cpu_hi = 0.8,
    .output_bytes = 16 * 1024 * 1024,
    .output_jitter = 0.15,
    .memory_bytes = 512ULL << 20,
};
const CategoryProfile kPrefetch{
    .work_scale = 0.3,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.4,
    .percent_cpu_hi = 0.6,  // mostly I/O bound
    .output_bytes = 8 * 1024 * 1024,
    .output_jitter = 0.3,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kFasterqDump{
    .work_scale = 0.5,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.75,
    .output_bytes = 12 * 1024 * 1024,
    .output_jitter = 0.3,
    .memory_bytes = 192ULL << 20,
};
const CategoryProfile kBlastn{
    .work_scale = 1.0,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.8,
    .percent_cpu_hi = 0.95,
    .output_bytes = 96 * 1024,
    .output_jitter = 0.3,
    .memory_bytes = 384ULL << 20,
};
const CategoryProfile kCatOutput{
    .work_scale = 0.1,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 64ULL << 20,
};

}  // namespace

std::string SrasearchRecipe::description() const {
  return "Sequence-read-archive search: makeblastdb plus per-accession "
         "prefetch -> fasterq_dump -> blastn chains, merged by cat_output.";
}

void SrasearchRecipe::populate(Workflow& wf, const GenerateOptions& options,
                               support::Rng& rng) const {
  RecipeBuilder builder(wf, options, rng);
  const std::size_t accessions =
      std::max<std::size_t>(1, (options.num_tasks - 2) / 3);

  const std::string db = builder.add_task("makeblastdb", kMakeBlastDb);
  builder.feed_external(db, "reference_sequences.fasta", 32ULL << 20);
  const std::string cat = builder.add_task("cat_output", kCatOutput);

  for (std::size_t i = 0; i < accessions; ++i) {
    const std::string prefetch = builder.add_task("prefetch", kPrefetch);
    builder.feed_external(prefetch, support::format("accession_{}.sra", i), 16ULL << 20);
    const std::string dump = builder.add_task("fasterq_dump", kFasterqDump);
    builder.feed(prefetch, dump);
    const std::string blastn = builder.add_task("blastn", kBlastn);
    builder.feed(dump, blastn);
    builder.feed(db, blastn);
    builder.feed(blastn, cat);
  }
}

}  // namespace wfs::wfcommons
