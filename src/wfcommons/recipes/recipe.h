// Recipe framework — the WfChef/WfGen analogue.
//
// A Recipe knows the structural pattern of one scientific-workflow family
// (observed in the WfInstances corpus) and can instantiate it at any size:
// generate(n) returns a Workflow with approximately n tasks whose shape
// (phases, fan-out, function mix) matches the family. Randomized quantities
// (file sizes, percent-cpu) are drawn from a seeded Rng so generation is
// fully reproducible.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "support/rng.h"
#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

struct GenerateOptions {
  /// Target task count; recipes clamp to their structural minimum and may
  /// deviate by a few tasks to keep the family's shape.
  std::size_t num_tasks = 50;
  /// Base cpu-work units per task before per-category scaling (the paper's
  /// "cpu-work" knob; their runs use 100-250).
  double cpu_work = 100.0;
  /// Multiplier on all file sizes (the WfBench I/O intensity knob).
  double data_scale = 1.0;
  /// Multiplier applied to num_tasks before generation — the mega-scale
  /// knob. `num_tasks=50, scale_factor=2000` yields a ~10^5-task instance
  /// of the same family shape (Merlin-style million-task ensembles are
  /// scale_factor=2e4). Values < 1 are clamped to 1.
  double scale_factor = 1.0;
  std::uint64_t seed = 1;
};

class Recipe {
 public:
  virtual ~Recipe() = default;

  /// Lower-case family key, e.g. "blast".
  [[nodiscard]] virtual std::string name() const = 0;
  /// Display name used in workflow instance names, e.g. "Blast".
  [[nodiscard]] virtual std::string display_name() const = 0;
  [[nodiscard]] virtual std::string description() const = 0;
  /// Smallest structurally valid instance.
  [[nodiscard]] virtual std::size_t min_tasks() const = 0;

  /// Generates an instance named "<Display>Recipe-<cpu_work>-<n>"
  /// (mirrors the artifact's "BlastRecipe-250-100" convention). The result
  /// always passes Workflow::validate().
  [[nodiscard]] Workflow generate(const GenerateOptions& options) const;

 protected:
  virtual void populate(Workflow& workflow, const GenerateOptions& options,
                        support::Rng& rng) const = 0;
};

/// Per-function-category knob distribution used by the recipe builders.
struct CategoryProfile {
  /// cpu-work multiplier relative to GenerateOptions::cpu_work.
  double work_scale = 1.0;
  double work_jitter = 0.2;  // relative stddev
  double percent_cpu_lo = 0.6;
  double percent_cpu_hi = 0.9;
  std::uint64_t output_bytes = 40 * 1024;  // per output file before data_scale
  double output_jitter = 0.25;
  std::uint64_t memory_bytes = 256ULL << 20;  // stressor allocation
};

/// Incremental workflow constructor shared by the recipes: sequential
/// WfCommons-style ids, one default output file per task, and dataflow-
/// correct dependency wiring (feed() both connects the DAG edge and passes
/// the parent's output files as the child's inputs).
class RecipeBuilder {
 public:
  RecipeBuilder(Workflow& workflow, const GenerateOptions& options, support::Rng& rng);

  /// Adds a task of `category` with randomized knobs per `profile` and one
  /// output file "<task>_output.txt". Returns the task name handle.
  std::string add_task(const std::string& category, const CategoryProfile& profile);

  /// parent -> child: DAG edge plus parent's outputs appended to child's
  /// inputs (so validate()'s dataflow rule holds by construction).
  void feed(const std::string& parent, const std::string& child);

  /// Declares an external (staged) input file on a task.
  void feed_external(const std::string& task, const std::string& file, std::uint64_t size);

  [[nodiscard]] std::size_t task_count() const noexcept { return workflow_.size(); }

 private:
  Workflow& workflow_;
  const GenerateOptions& options_;
  support::Rng& rng_;
  std::uint64_t counter_ = 1;
  // Input-file names per task, mirrored from feed()/feed_external(): keeps
  // diamond-wiring dedup O(1) per file instead of scanning the child's file
  // list (quadratic at wide fan-in — blast's cat task at 10^5 tasks).
  std::unordered_map<std::string, std::unordered_set<std::string>> input_names_;
};

// ---- catalog ---------------------------------------------------------------

/// All recipe keys, in the paper's order: blast, bwa, cycles, epigenomics,
/// genome, seismology, srasearch.
[[nodiscard]] std::vector<std::string> recipe_names();

/// Instantiates by key (case-insensitive). Throws std::invalid_argument for
/// unknown names.
[[nodiscard]] std::unique_ptr<Recipe> make_recipe(std::string_view name);

/// Constructs every recipe (for sweeps over all families).
[[nodiscard]] std::vector<std::unique_ptr<Recipe>> all_recipes();

}  // namespace wfs::wfcommons
