#include "wfcommons/recipes/recipes.h"

#include "support/format.h"

namespace wfs::wfcommons {
namespace {

const CategoryProfile kDecon{
    .work_scale = 1.0,
    .work_jitter = 0.25,
    .percent_cpu_lo = 0.75,
    .percent_cpu_hi = 0.95,
    .output_bytes = 24 * 1024,
    .output_jitter = 0.3,
    .memory_bytes = 192ULL << 20,
};
const CategoryProfile kSift{
    .work_scale = 0.2,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 2 * 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 128ULL << 20,
};

}  // namespace

std::string SeismologyRecipe::description() const {
  return "Seismic source-time-function inversion: one sG1IterDecon per "
         "station, all sifted by wrapper_siftSTFByMisfit — the densest, "
         "flattest family (2 phases).";
}

void SeismologyRecipe::populate(Workflow& wf, const GenerateOptions& options,
                                support::Rng& rng) const {
  RecipeBuilder builder(wf, options, rng);
  const std::size_t stations = options.num_tasks - 1;

  const std::string sift = builder.add_task("wrapper_siftSTFByMisfit", kSift);
  for (std::size_t i = 0; i < stations; ++i) {
    const std::string decon = builder.add_task("sG1IterDecon", kDecon);
    builder.feed_external(decon, support::format("station_{}.seed", i), 1ULL << 20);
    builder.feed(decon, sift);
  }
}

}  // namespace wfs::wfcommons
