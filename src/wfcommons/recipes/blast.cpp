#include "wfcommons/recipes/recipes.h"

namespace wfs::wfcommons {
namespace {

// Knob distributions per function category, shaped after the Blast
// WfInstances: one cheap splitter, a wide level of uniform blastall
// searches (the paper's excerpt shows percent-cpu 0.9, ~40 KB outputs),
// and two cheap merges.
const CategoryProfile kSplitFasta{
    .work_scale = 0.5,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 200 * 1024,
    .output_jitter = 0.1,
    .memory_bytes = 64ULL << 20,
};
const CategoryProfile kBlastall{
    .work_scale = 1.0,
    .work_jitter = 0.15,
    .percent_cpu_lo = 0.8,
    .percent_cpu_hi = 0.95,
    .output_bytes = 40 * 1024,
    .output_jitter = 0.25,
    .memory_bytes = 256ULL << 20,
};
const CategoryProfile kCatBlast{
    .work_scale = 0.15,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 4 * 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kCat{
    .work_scale = 0.1,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 64ULL << 20,
};

}  // namespace

std::string BlastRecipe::description() const {
  return "BLAST sequence search: split_fasta fans out to a wide level of "
         "blastall tasks whose hits are merged by cat_blast and cat.";
}

void BlastRecipe::populate(Workflow& wf, const GenerateOptions& options,
                           support::Rng& rng) const {
  RecipeBuilder builder(wf, options, rng);
  const std::size_t searches = options.num_tasks - 3;

  const std::string split = builder.add_task("split_fasta", kSplitFasta);
  builder.feed_external(split, "blast_input.fasta", 8ULL << 20);

  const std::string cat_blast = builder.add_task("cat_blast", kCatBlast);
  const std::string cat = builder.add_task("cat", kCat);

  for (std::size_t i = 0; i < searches; ++i) {
    const std::string blastall = builder.add_task("blastall", kBlastall);
    builder.feed(split, blastall);
    builder.feed(blastall, cat_blast);
    builder.feed(blastall, cat);
  }
}

}  // namespace wfs::wfcommons
