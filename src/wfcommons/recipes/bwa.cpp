#include "wfcommons/recipes/recipes.h"

namespace wfs::wfcommons {
namespace {

const CategoryProfile kBwaIndex{
    .work_scale = 0.6,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.7,
    .percent_cpu_hi = 0.9,
    .output_bytes = 6 * 1024 * 1024,
    .output_jitter = 0.1,
    .memory_bytes = 512ULL << 20,
};
const CategoryProfile kFastqReduce{
    .work_scale = 0.4,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 512 * 1024,
    .output_jitter = 0.15,
    .memory_bytes = 128ULL << 20,
};
const CategoryProfile kBwa{
    .work_scale = 1.0,
    .work_jitter = 0.2,
    .percent_cpu_lo = 0.8,
    .percent_cpu_hi = 0.95,
    .output_bytes = 96 * 1024,
    .output_jitter = 0.3,
    .memory_bytes = 384ULL << 20,
};
const CategoryProfile kBwaConcat{
    .work_scale = 0.15,
    .work_jitter = 0.1,
    .percent_cpu_lo = 0.5,
    .percent_cpu_hi = 0.7,
    .output_bytes = 8 * 1024 * 1024,
    .output_jitter = 0.2,
    .memory_bytes = 128ULL << 20,
};

}  // namespace

std::string BwaRecipe::description() const {
  return "Burrows-Wheeler alignment: bwa_index and fastq_reduce feed a wide "
         "level of bwa aligners merged by bwa_concat.";
}

void BwaRecipe::populate(Workflow& wf, const GenerateOptions& options,
                         support::Rng& rng) const {
  RecipeBuilder builder(wf, options, rng);
  const std::size_t aligners = options.num_tasks - 3;

  const std::string index = builder.add_task("bwa_index", kBwaIndex);
  builder.feed_external(index, "reference_genome.fasta", 64ULL << 20);
  const std::string reduce = builder.add_task("fastq_reduce", kFastqReduce);
  builder.feed_external(reduce, "reads.fastq", 32ULL << 20);

  const std::string concat = builder.add_task("bwa_concat", kBwaConcat);

  for (std::size_t i = 0; i < aligners; ++i) {
    const std::string bwa = builder.add_task("bwa", kBwa);
    builder.feed(index, bwa);
    builder.feed(reduce, bwa);
    builder.feed(bwa, concat);
  }
}

}  // namespace wfs::wfcommons
