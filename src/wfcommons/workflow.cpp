#include "wfcommons/workflow.h"

#include <algorithm>
#include <deque>
#include <utility>
#include <stdexcept>
#include <unordered_set>

#include "support/format.h"

namespace wfs::wfcommons {

std::vector<const TaskFile*> Task::inputs() const {
  std::vector<const TaskFile*> out;
  for (const TaskFile& f : files) {
    if (f.link == TaskFile::Link::kInput) out.push_back(&f);
  }
  return out;
}

std::vector<const TaskFile*> Task::outputs() const {
  std::vector<const TaskFile*> out;
  for (const TaskFile& f : files) {
    if (f.link == TaskFile::Link::kOutput) out.push_back(&f);
  }
  return out;
}

std::uint64_t Task::input_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const TaskFile& f : files) {
    if (f.link == TaskFile::Link::kInput) total += f.size_bytes;
  }
  return total;
}

std::uint64_t Task::output_bytes() const noexcept {
  std::uint64_t total = 0;
  for (const TaskFile& f : files) {
    if (f.link == TaskFile::Link::kOutput) total += f.size_bytes;
  }
  return total;
}

Task& Workflow::add_task(Task task) {
  // Extend the caches in place instead of dirtying them: a recipe adding N
  // tasks stays O(N) rather than paying a full index rebuild per add.
  rebuild_index();
  if (index_.contains(task.name)) {
    throw std::invalid_argument("duplicate task name: " + task.name);
  }
  for (const std::string& c : task.children) {
    child_edge_cache_.insert(edge_key(task.name, c));
  }
  for (const std::string& p : task.parents) {
    parent_edge_cache_.insert(edge_key(p, task.name));
  }
  index_.emplace(task.name, tasks_.size());
  tasks_.push_back(std::move(task));
  return tasks_.back();
}

std::string Workflow::edge_key(std::string_view parent, std::string_view child) {
  std::string key;
  key.reserve(parent.size() + 1 + child.size());
  key.append(parent);
  key.push_back('\x1f');  // unit separator — cannot appear in task names
  key.append(child);
  return key;
}

void Workflow::rebuild_index() const {
  if (!index_dirty_) return;
  index_.clear();
  for (std::size_t i = 0; i < tasks_.size(); ++i) index_.emplace(tasks_[i].name, i);
  child_edge_cache_.clear();
  parent_edge_cache_.clear();
  for (const Task& t : tasks_) {
    for (const std::string& c : t.children) child_edge_cache_.insert(edge_key(t.name, c));
    for (const std::string& p : t.parents) parent_edge_cache_.insert(edge_key(p, t.name));
  }
  index_dirty_ = false;
}

const Task* Workflow::find(std::string_view name) const noexcept {
  rebuild_index();
  const auto it = index_.find(std::string(name));
  return it == index_.end() ? nullptr : &tasks_[it->second];
}

Task* Workflow::find(std::string_view name) noexcept {
  return const_cast<Task*>(std::as_const(*this).find(name));
}

void Workflow::connect(std::string_view parent, std::string_view child) {
  Task* p = find(parent);
  Task* c = find(child);
  if (p == nullptr) throw std::invalid_argument("connect: unknown parent " + std::string(parent));
  if (c == nullptr) throw std::invalid_argument("connect: unknown child " + std::string(child));
  if (p == c) throw std::invalid_argument("connect: self-edge on " + std::string(parent));
  // O(1) idempotency via the edge caches (find() above rebuilt them if
  // stale) — a linear scan of the adjacency lists makes wide fan-in/out
  // generation quadratic.
  const std::string key = edge_key(p->name, c->name);
  if (child_edge_cache_.insert(key).second) p->children.emplace_back(c->name);
  if (parent_edge_cache_.insert(key).second) c->parents.emplace_back(p->name);
}

std::vector<const Task*> Workflow::roots() const {
  std::vector<const Task*> out;
  for (const Task& t : tasks_) {
    if (t.parents.empty()) out.push_back(&t);
  }
  return out;
}

std::vector<const Task*> Workflow::leaves() const {
  std::vector<const Task*> out;
  for (const Task& t : tasks_) {
    if (t.children.empty()) out.push_back(&t);
  }
  return out;
}

std::size_t Workflow::edge_count() const noexcept {
  std::size_t total = 0;
  for (const Task& t : tasks_) total += t.children.size();
  return total;
}

std::vector<TaskFile> Workflow::external_inputs() const {
  std::unordered_set<std::string> produced;
  for (const Task& t : tasks_) {
    for (const TaskFile& f : t.files) {
      if (f.link == TaskFile::Link::kOutput) produced.insert(f.name);
    }
  }
  std::vector<TaskFile> out;
  std::unordered_set<std::string> seen;
  for (const Task& t : tasks_) {
    for (const TaskFile& f : t.files) {
      if (f.link == TaskFile::Link::kInput && !produced.contains(f.name) &&
          seen.insert(f.name).second) {
        out.push_back(f);
      }
    }
  }
  return out;
}

std::vector<std::string> Workflow::validate() const {
  std::vector<std::string> problems;
  rebuild_index();

  // Duplicate names (add_task prevents them, but deserialized workflows
  // bypass that path via tasks()).
  {
    std::unordered_set<std::string> seen;
    for (const Task& t : tasks_) {
      if (!seen.insert(t.name).second) problems.push_back("duplicate task name: " + t.name);
    }
  }

  // Reference integrity and symmetry (the edge caches — rebuilt above with
  // the index — turn the per-edge membership tests into hash lookups).
  for (const Task& t : tasks_) {
    for (const std::string& p : t.parents) {
      if (find(p) == nullptr) {
        problems.push_back(support::format("task {} has unknown parent {}", t.name, p));
      } else if (!child_edge_cache_.contains(edge_key(p, t.name))) {
        problems.push_back(
            support::format("edge {} -> {} missing from parent's children", p, t.name));
      }
    }
    for (const std::string& c : t.children) {
      if (find(c) == nullptr) {
        problems.push_back(support::format("task {} has unknown child {}", t.name, c));
      } else if (!parent_edge_cache_.contains(edge_key(t.name, c))) {
        problems.push_back(
            support::format("edge {} -> {} missing from child's parents", t.name, c));
      }
    }
  }

  // Acyclicity.
  try {
    (void)topological_order(*this);
  } catch (const std::invalid_argument&) {
    problems.emplace_back("workflow contains a cycle");
  }

  // Dataflow: a consumed file must come from a parent (or be external), and
  // no file may have two producers.
  std::unordered_map<std::string, const Task*> producer;
  for (const Task& t : tasks_) {
    for (const TaskFile& f : t.files) {
      if (f.link != TaskFile::Link::kOutput) continue;
      const auto [it, inserted] = producer.emplace(f.name, &t);
      if (!inserted) {
        problems.push_back(support::format("file {} produced by both {} and {}", f.name,
                                           it->second->name, t.name));
      }
    }
  }
  for (const Task& t : tasks_) {
    for (const TaskFile& f : t.files) {
      if (f.link != TaskFile::Link::kInput) continue;
      const auto it = producer.find(f.name);
      if (it == producer.end()) continue;  // external input, staged by the WFM
      const Task* source = it->second;
      if (source->name == t.name) {
        problems.push_back(support::format("task {} consumes its own output {}", t.name, f.name));
        continue;
      }
      if (!parent_edge_cache_.contains(edge_key(source->name, t.name))) {
        problems.push_back(support::format(
            "task {} consumes {} produced by non-parent {}", t.name, f.name, source->name));
      }
    }
  }

  return problems;
}

std::vector<std::size_t> topological_order(const Workflow& workflow) {
  const auto& tasks = workflow.tasks();
  std::unordered_map<std::string_view, std::size_t> index;
  for (std::size_t i = 0; i < tasks.size(); ++i) index.emplace(tasks[i].name, i);

  std::vector<std::size_t> in_degree(tasks.size(), 0);
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    in_degree[i] = tasks[i].parents.size();
  }
  std::deque<std::size_t> ready;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (in_degree[i] == 0) ready.push_back(i);
  }
  std::vector<std::size_t> order;
  order.reserve(tasks.size());
  while (!ready.empty()) {
    const std::size_t i = ready.front();
    ready.pop_front();
    order.push_back(i);
    for (const std::string& child : tasks[i].children) {
      const auto it = index.find(child);
      if (it == index.end()) continue;  // validate() reports this separately
      if (--in_degree[it->second] == 0) ready.push_back(it->second);
    }
  }
  if (order.size() != tasks.size()) {
    throw std::invalid_argument("topological_order: workflow contains a cycle");
  }
  return order;
}

}  // namespace wfs::wfcommons
