#include "wfcommons/analysis.h"

#include <algorithm>
#include <set>
#include <unordered_map>

#include "support/format.h"

namespace wfs::wfcommons {

std::vector<std::vector<const Task*>> levels(const Workflow& workflow) {
  const std::vector<std::size_t> order = topological_order(workflow);
  const auto& tasks = workflow.tasks();
  std::unordered_map<std::string_view, std::size_t> level_of;
  std::size_t max_level = 0;
  for (const std::size_t i : order) {
    std::size_t level = 0;
    for (const std::string& parent : tasks[i].parents) {
      const auto it = level_of.find(parent);
      if (it != level_of.end()) level = std::max(level, it->second + 1);
    }
    level_of.emplace(tasks[i].name, level);
    max_level = std::max(max_level, level);
  }
  std::vector<std::vector<const Task*>> out(workflow.empty() ? 0 : max_level + 1);
  for (const Task& t : tasks) out[level_of.at(t.name)].push_back(&t);
  return out;
}

std::vector<std::size_t> phase_histogram(const Workflow& workflow) {
  std::vector<std::size_t> out;
  for (const auto& level : levels(workflow)) out.push_back(level.size());
  return out;
}

std::map<std::string, std::size_t> category_histogram(const Workflow& workflow) {
  std::map<std::string, std::size_t> out;
  for (const Task& t : workflow.tasks()) ++out[t.category];
  return out;
}

DagStats compute_stats(const Workflow& workflow) {
  DagStats stats;
  stats.tasks = workflow.size();
  stats.edges = workflow.edge_count();
  const auto phase_sizes = phase_histogram(workflow);
  stats.levels = phase_sizes.size();
  for (const std::size_t width : phase_sizes) stats.max_width = std::max(stats.max_width, width);
  stats.mean_width =
      stats.levels == 0 ? 0.0
                        : static_cast<double>(stats.tasks) / static_cast<double>(stats.levels);
  stats.roots = workflow.roots().size();
  stats.leaves = workflow.leaves().size();
  stats.categories = category_histogram(workflow).size();
  for (const TaskFile& f : workflow.external_inputs()) stats.external_input_bytes += f.size_bytes;
  for (const Task& t : workflow.tasks()) {
    stats.produced_bytes += t.output_bytes();
    stats.total_cpu_work += t.cpu_work;
  }
  stats.density = stats.tasks == 0
                      ? 0.0
                      : static_cast<double>(stats.max_width) / static_cast<double>(stats.tasks);
  return stats;
}

BehaviorGroup classify(const Workflow& workflow) {
  const DagStats stats = compute_stats(workflow);
  if (stats.density >= 0.5 || stats.levels <= 4) return BehaviorGroup::kDense;
  return BehaviorGroup::kLayered;
}

std::string to_string(BehaviorGroup group) {
  return group == BehaviorGroup::kDense ? "dense (group 1)" : "layered (group 2)";
}

CriticalPath critical_path(const Workflow& workflow) {
  CriticalPath out;
  if (workflow.empty()) return out;
  const auto& tasks = workflow.tasks();
  std::unordered_map<std::string_view, std::size_t> index;
  for (std::size_t i = 0; i < tasks.size(); ++i) index.emplace(tasks[i].name, i);

  const auto duration = [](const Task& task) {
    return task.cpu_work / std::max(task.percent_cpu, 1e-9);
  };

  // Longest-path DP over the topological order.
  std::vector<double> best(tasks.size(), 0.0);
  std::vector<std::ptrdiff_t> predecessor(tasks.size(), -1);
  for (const std::size_t i : topological_order(workflow)) {
    double incoming = 0.0;
    std::ptrdiff_t from = -1;
    for (const std::string& parent : tasks[i].parents) {
      const std::size_t p = index.at(parent);
      if (best[p] > incoming) {
        incoming = best[p];
        from = static_cast<std::ptrdiff_t>(p);
      }
    }
    best[i] = incoming + duration(tasks[i]);
    predecessor[i] = from;
  }

  std::size_t tail = 0;
  for (std::size_t i = 0; i < tasks.size(); ++i) {
    if (best[i] > best[tail]) tail = i;
  }
  out.seconds = best[tail];
  for (std::ptrdiff_t i = static_cast<std::ptrdiff_t>(tail); i >= 0; i = predecessor[i]) {
    out.tasks.push_back(&tasks[static_cast<std::size_t>(i)]);
  }
  std::reverse(out.tasks.begin(), out.tasks.end());
  return out;
}

std::string render_structure(const Workflow& workflow) {
  std::string out = support::format("{} — {} tasks, {} edges\n", workflow.name(),
                                    workflow.size(), workflow.edge_count());
  const auto by_level = levels(workflow);
  for (std::size_t i = 0; i < by_level.size(); ++i) {
    // Count per category within this level, keeping first-seen order.
    std::vector<std::pair<std::string, std::size_t>> counts;
    for (const Task* t : by_level[i]) {
      auto it = std::find_if(counts.begin(), counts.end(),
                             [&](const auto& entry) { return entry.first == t->category; });
      if (it == counts.end()) {
        counts.emplace_back(t->category, 1);
      } else {
        ++it->second;
      }
    }
    std::string detail;
    for (const auto& [category, count] : counts) {
      if (!detail.empty()) detail += ", ";
      detail += count == 1 ? category : support::format("{} x{}", category, count);
    }
    out += support::format("  phase {:>2}: {:>5} task{}  [{}]\n", i, by_level[i].size(),
                           by_level[i].size() == 1 ? " " : "s", detail);
  }
  return out;
}

}  // namespace wfs::wfcommons
