#include "wfcommons/wfinstances.h"

#include <stdexcept>

namespace wfs::wfcommons {
namespace {

// Helper: fixed-knob task with one output file.
Task fixed_task(const std::string& name, const std::string& id, const std::string& category,
                double percent_cpu, double cpu_work, std::uint64_t memory_bytes,
                const std::string& output, std::uint64_t output_bytes) {
  Task task;
  task.name = name;
  task.id = id;
  task.category = category;
  task.percent_cpu = percent_cpu;
  task.cpu_work = cpu_work;
  task.memory_bytes = memory_bytes;
  task.files.push_back(TaskFile{TaskFile::Link::kOutput, output, output_bytes});
  return task;
}

void wire(Workflow& wf, const std::string& parent, const std::string& child) {
  wf.connect(parent, child);
  Task* p = wf.find(parent);
  Task* c = wf.find(child);
  for (const TaskFile* out : p->outputs()) {
    c->files.push_back(TaskFile{TaskFile::Link::kInput, out->name, out->size_bytes});
  }
}

// A 7-task Blast trace: the excerpt of the paper's §III-A is a task from
// exactly this shape (one split, parallel blastall, two merges).
Workflow blast_small() {
  Workflow wf("blast-chameleon-small");
  wf.add_task(fixed_task("split_fasta_00000001", "00000001", "split_fasta", 0.6, 52.0,
                         64ULL << 20, "split_fasta_00000001_output.txt", 204082));
  wf.find("split_fasta_00000001")
      ->files.push_back(TaskFile{TaskFile::Link::kInput, "blast_input.fasta", 8ULL << 20});
  const std::uint64_t blastall_out[4] = {40161, 39874, 41200, 40010};
  const double blastall_cpu[4] = {0.9, 0.88, 0.91, 0.87};
  for (int i = 0; i < 4; ++i) {
    const std::string id = "0000000" + std::to_string(i + 2);
    const std::string name = "blastall_" + id;
    wf.add_task(fixed_task(name, id, "blastall", blastall_cpu[i], 100.0, 256ULL << 20,
                           name + "_output.txt", blastall_out[i]));
    wire(wf, "split_fasta_00000001", name);
  }
  wf.add_task(fixed_task("cat_blast_00000006", "00000006", "cat_blast", 0.62, 15.0,
                         128ULL << 20, "cat_blast_00000006_output.txt", 4ULL << 20));
  wf.add_task(fixed_task("cat_00000007", "00000007", "cat", 0.55, 10.0, 64ULL << 20,
                         "cat_00000007_output.txt", 1ULL << 20));
  for (int i = 0; i < 4; ++i) {
    const std::string name = "blastall_0000000" + std::to_string(i + 2);
    wire(wf, name, "cat_blast_00000006");
    wire(wf, name, "cat_00000007");
  }
  return wf;
}

// A 12-task Epigenomics trace: one lane, two 4-stage chains, lane merge,
// chr21, pileup.
Workflow epigenomics_small() {
  Workflow wf("epigenomics-ilmn-small");
  wf.add_task(fixed_task("fastqsplit_00000001", "00000001", "fastqsplit", 0.58, 40.0,
                         128ULL << 20, "fastqsplit_00000001_output.txt", 512 * 1024));
  wf.find("fastqsplit_00000001")
      ->files.push_back(TaskFile{TaskFile::Link::kInput, "lane_0.sfq", 16ULL << 20});
  const char* stages[4] = {"filter_contams", "sol2sanger", "fast2bfq", "map"};
  const double stage_work[4] = {48.0, 31.0, 29.0, 122.0};
  const double stage_cpu[4] = {0.72, 0.61, 0.60, 0.89};
  const std::uint64_t stage_mem[4] = {160ULL << 20, 128ULL << 20, 128ULL << 20,
                                      512ULL << 20};
  int ordinal = 2;
  for (int chain = 0; chain < 2; ++chain) {
    std::string previous = "fastqsplit_00000001";
    for (int s = 0; s < 4; ++s) {
      const std::string id = "0000000" + std::to_string(ordinal++);
      const std::string name = std::string(stages[s]) + "_" + id;
      wf.add_task(fixed_task(name, id, stages[s], stage_cpu[s], stage_work[s], stage_mem[s],
                             name + "_output.txt", 300 * 1024 + chain * 1024));
      wire(wf, previous, name);
      previous = name;
    }
  }
  wf.add_task(fixed_task("map_merge_00000010", "00000010", "map_merge", 0.6, 26.0,
                         256ULL << 20, "map_merge_00000010_output.txt", 4ULL << 20));
  wire(wf, "map_00000005", "map_merge_00000010");
  wire(wf, "map_00000009", "map_merge_00000010");
  wf.add_task(fixed_task("chr21_00000011", "00000011", "chr21", 0.67, 33.0, 192ULL << 20,
                         "chr21_00000011_output.txt", 1ULL << 20));
  wire(wf, "map_merge_00000010", "chr21_00000011");
  wf.add_task(fixed_task("pileup_00000012", "00000012", "pileup", 0.71, 49.0, 256ULL << 20,
                         "pileup_00000012_output.txt", 2ULL << 20));
  wire(wf, "chr21_00000011", "pileup_00000012");
  return wf;
}

// A 6-task Seismology trace: five deconvolutions, one sift.
Workflow seismology_small() {
  Workflow wf("seismology-sgt-small");
  wf.add_task(fixed_task("wrapper_siftSTFByMisfit_00000006", "00000006",
                         "wrapper_siftSTFByMisfit", 0.55, 22.0, 128ULL << 20,
                         "wrapper_siftSTFByMisfit_00000006_output.txt", 2ULL << 20));
  const double decon_work[5] = {96.0, 104.0, 99.0, 101.0, 95.0};
  for (int i = 0; i < 5; ++i) {
    const std::string id = "0000000" + std::to_string(i + 1);
    const std::string name = "sG1IterDecon_" + id;
    wf.add_task(fixed_task(name, id, "sG1IterDecon", 0.85, decon_work[i], 192ULL << 20,
                           name + "_output.txt", 24 * 1024));
    wf.find(name)->files.push_back(
        TaskFile{TaskFile::Link::kInput, "station_" + std::to_string(i) + ".seed",
                 1ULL << 20});
    wire(wf, name, "wrapper_siftSTFByMisfit_00000006");
  }
  return wf;
}

// An 8-task 1000-Genome trace: one chromosome, four individuals, merge,
// sifting, one population's overlap + frequency.
Workflow genome_small() {
  Workflow wf("1000genome-chr21-small");
  for (int i = 0; i < 4; ++i) {
    const std::string id = "0000000" + std::to_string(i + 1);
    const std::string name = "individuals_" + id;
    wf.add_task(fixed_task(name, id, "individuals", 0.84, 98.0 + i, 384ULL << 20,
                           name + "_output.txt", 3ULL << 20));
    wf.find(name)->files.push_back(TaskFile{
        TaskFile::Link::kInput, "chr21_slice_" + std::to_string(i) + ".vcf", 12ULL << 20});
  }
  wf.add_task(fixed_task("individuals_merge_00000005", "00000005", "individuals_merge", 0.6,
                         30.0, 512ULL << 20, "individuals_merge_00000005_output.txt",
                         24ULL << 20));
  for (int i = 0; i < 4; ++i) {
    wire(wf, "individuals_0000000" + std::to_string(i + 1), "individuals_merge_00000005");
  }
  wf.add_task(fixed_task("sifting_00000006", "00000006", "sifting", 0.68, 41.0,
                         192ULL << 20, "sifting_00000006_output.txt", 1ULL << 20));
  wf.find("sifting_00000006")
      ->files.push_back(TaskFile{TaskFile::Link::kInput, "chr21_annotations.vcf", 4ULL << 20});
  wf.add_task(fixed_task("mutation_overlap_00000007", "00000007", "mutation_overlap", 0.77,
                         60.0, 256ULL << 20, "mutation_overlap_00000007_output.txt",
                         512 * 1024));
  wf.add_task(fixed_task("frequency_00000008", "00000008", "frequency", 0.79, 70.0,
                         256ULL << 20, "frequency_00000008_output.txt", 768 * 1024));
  for (const char* analysis : {"mutation_overlap_00000007", "frequency_00000008"}) {
    wire(wf, "individuals_merge_00000005", analysis);
    wire(wf, "sifting_00000006", analysis);
  }
  return wf;
}

// An 11-task Cycles trace: one land unit, four fertilizer levels.
Workflow cycles_small() {
  Workflow wf("cycles-unit0-small");
  wf.add_task(fixed_task("baseline_cycles_00000001", "00000001", "baseline_cycles", 0.78,
                         81.0, 256ULL << 20, "baseline_cycles_00000001_output.txt",
                         1ULL << 20));
  wf.find("baseline_cycles_00000001")
      ->files.push_back(TaskFile{TaskFile::Link::kInput, "land_unit_0.soil", 2ULL << 20});
  wf.add_task(fixed_task("cycles_fertilizer_increase_output_summary_00000010", "00000010",
                         "cycles_fertilizer_increase_output_summary", 0.6, 25.0,
                         128ULL << 20, "summary_00000010_output.txt", 128 * 1024));
  for (int f = 0; f < 4; ++f) {
    const std::string cycles_id = "0000000" + std::to_string(f + 2);
    const std::string cycles_name = "cycles_" + cycles_id;
    wf.add_task(fixed_task(cycles_name, cycles_id, "cycles", 0.82, 100.0 + 2 * f,
                           320ULL << 20, cycles_name + "_output.txt", 2ULL << 20));
    wire(wf, "baseline_cycles_00000001", cycles_name);
    const std::string increase_id = "0000000" + std::to_string(f + 6);
    const std::string increase_name = "cycles_fertilizer_increase_output_" + increase_id;
    wf.add_task(fixed_task(increase_name, increase_id, "cycles_fertilizer_increase_output",
                           0.66, 34.0, 128ULL << 20, increase_name + "_output.txt",
                           256 * 1024));
    wire(wf, cycles_name, increase_name);
    wire(wf, increase_name, "cycles_fertilizer_increase_output_summary_00000010");
  }
  wf.add_task(fixed_task("cycles_plots_00000011", "00000011", "cycles_plots", 0.6, 29.0,
                         256ULL << 20, "cycles_plots_00000011_output.txt", 4ULL << 20));
  wire(wf, "cycles_fertilizer_increase_output_summary_00000010", "cycles_plots_00000011");
  return wf;
}

}  // namespace

const std::vector<InstanceInfo>& instance_catalog() {
  static const std::vector<InstanceInfo> kCatalog = {
      {"blast-chameleon-small", "bioinformatics", "blast", 7},
      {"epigenomics-ilmn-small", "bioinformatics", "epigenomics", 12},
      {"seismology-sgt-small", "seismology", "seismology", 6},
      {"1000genome-chr21-small", "bioinformatics", "genome", 8},
      {"cycles-unit0-small", "agroecosystems", "cycles", 11},
  };
  return kCatalog;
}

std::vector<std::string> instance_names() {
  std::vector<std::string> names;
  for (const InstanceInfo& info : instance_catalog()) names.push_back(info.name);
  return names;
}

Workflow load_instance(std::string_view name) {
  if (name == "blast-chameleon-small") return blast_small();
  if (name == "epigenomics-ilmn-small") return epigenomics_small();
  if (name == "seismology-sgt-small") return seismology_small();
  if (name == "1000genome-chr21-small") return genome_small();
  if (name == "cycles-unit0-small") return cycles_small();
  throw std::invalid_argument("unknown WfInstance: " + std::string(name));
}

}  // namespace wfs::wfcommons
