// (De)serialization of workflows in the WfCommons-derived JSON layout the
// paper's workflow manager consumes (see the excerpt in §III-A).
//
// Two argument styles exist:
//  * kList — the traditional WfCommons form: "arguments" is a list of
//    "--flag=value" strings;
//  * kKeyValue — the paper's Knative-translator form: "arguments" is a list
//    holding one object of key/values ({"name":..., "percent-cpu":...,
//    "cpu-work":..., "out":{file:size}, "inputs":[...]}), which maps 1:1
//    onto the wfbench service's POST body.
// The reader accepts both; writers pick one.
#pragma once

#include <string>

#include "json/value.h"
#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

enum class ArgsStyle { kList, kKeyValue };

/// Serializes the workflow:
/// {"name":..., "schema":..., "tasks": {taskName: {...}, ...}}
[[nodiscard]] json::Value to_json(const Workflow& workflow,
                                  ArgsStyle style = ArgsStyle::kList);

/// Serializes one task entry (the value under its name key).
[[nodiscard]] json::Value task_to_json(const Task& task, ArgsStyle style);

/// Parses either argument style back into a Workflow. Throws
/// std::invalid_argument (with context) on structural problems.
[[nodiscard]] Workflow from_json(const json::Value& document);

/// Convenience: parse text -> Workflow (throws json::ParseError or
/// std::invalid_argument).
[[nodiscard]] Workflow parse_workflow(const std::string& text);

/// Convenience: Workflow -> pretty JSON text.
[[nodiscard]] std::string write_workflow(const Workflow& workflow,
                                         ArgsStyle style = ArgsStyle::kList);

// ---- WfCommons wfformat v1.5 (the upstream nested schema) -------------------
//
// The upstream WfCommons corpus stores instances as
//   {"name", "schemaVersion": "1.5",
//    "workflow": {"specification": {"tasks": [...], "files": [...]},
//                 "execution": {"tasks": [...]}}}
// with tasks referencing file ids. These functions interoperate with that
// layout; parse_workflow() auto-detects it, so corpus files and this
// repository's flat layout are both accepted everywhere.

/// Serializes into the nested wfformat v1.5 document.
[[nodiscard]] json::Value to_wfformat_v15(const Workflow& workflow);

/// Parses a wfformat v1.5 document. Throws std::invalid_argument on
/// structural problems.
[[nodiscard]] Workflow from_wfformat_v15(const json::Value& document);

/// True when the document looks like wfformat v1.5 (has a "workflow" object
/// with a "specification").
[[nodiscard]] bool is_wfformat_v15(const json::Value& document);

}  // namespace wfs::wfcommons
