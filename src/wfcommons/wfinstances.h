// WfInstances — the curated catalog of small reference workflow instances
// (the first WfCommons component in the paper's Figure 2: "gathers
// different scientific workflows and groups them by type").
//
// Each instance is a fixed, hand-curated trace: deterministic task knobs
// and file sizes shaped after published WfInstances executions (Chameleon
// cloud runs of Pegasus workflows). They are the ground truth the recipes
// (WfChef analogues) abstract, and they are handy in tests and examples as
// stable, tiny, realistic workflows.
#pragma once

#include <string>
#include <string_view>
#include <vector>

#include "wfcommons/workflow.h"

namespace wfs::wfcommons {

struct InstanceInfo {
  std::string name;      // catalog key, e.g. "blast-chameleon-small"
  std::string domain;    // e.g. "bioinformatics"
  std::string family;    // recipe key this instance seeds, e.g. "blast"
  std::size_t tasks = 0;
};

/// The catalog, in stable order.
[[nodiscard]] const std::vector<InstanceInfo>& instance_catalog();

/// Catalog keys only.
[[nodiscard]] std::vector<std::string> instance_names();

/// Materialises an instance; always passes Workflow::validate(). Throws
/// std::invalid_argument for unknown names.
[[nodiscard]] Workflow load_instance(std::string_view name);

}  // namespace wfs::wfcommons
