// A Knative pod: resource reservation + cold start + one wfbench serving
// container.
//
// Lifecycle: Starting --(cold_start elapses)--> Ready --terminate()-->
// Terminated. Construction reserves the pod's CPU/memory requests on its
// node (the kube scheduler already checked they fit) and creates the
// cgroup quota group when a CPU limit is set; the container process (and
// its memory footprint) appears only when the pod becomes Ready — cold
// starts are visible in the memory curves exactly as on a real cluster.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "cluster/node.h"
#include "faas/service_config.h"
#include "obs/trace_recorder.h"
#include "storage/data_store.h"
#include "wfbench/service.h"

namespace wfs::metrics {
class Histogram;
}  // namespace wfs::metrics

namespace wfs::faas {

enum class PodState { kStarting, kReady, kTerminated };

class Pod {
 public:
  /// Reserves requests on `node` and begins the cold start; `on_ready`
  /// fires when the container starts serving. Throws std::runtime_error if
  /// the reservation fails (scheduler/ledger disagreement). When `trace` is
  /// set (and enabled) the pod emits its lifecycle spans — scheduled /
  /// cold-start / serving / terminated — on a lane of process `trace_pid`.
  /// `cold_start_hist`, when set, records the creation->Ready duration in
  /// seconds the moment the pod becomes Ready (pods killed before Ready
  /// never observe — same contract as KnativePlatformStats).
  Pod(sim::Context& sim, std::string name, const KnativeServiceSpec& spec,
      cluster::Node& node, storage::DataStore& fs, std::function<void(Pod&)> on_ready,
      obs::TraceRecorder* trace = nullptr, obs::TraceRecorder::Pid trace_pid = 0,
      metrics::Histogram* cold_start_hist = nullptr);
  ~Pod();

  Pod(const Pod&) = delete;
  Pod& operator=(const Pod&) = delete;

  /// Stops the container (releasing all its memory, including PM keeps) and
  /// frees the reservation. Idempotent.
  void terminate();

  [[nodiscard]] PodState state() const noexcept { return state_; }
  [[nodiscard]] bool ready() const noexcept { return state_ == PodState::kReady; }
  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] cluster::Node& node() noexcept { return node_; }

  /// The serving container; nullptr until Ready / after termination.
  [[nodiscard]] wfbench::WfBenchService* service() noexcept { return service_.get(); }
  [[nodiscard]] const wfbench::WfBenchService* service() const noexcept {
    return service_.get();
  }

  /// In-flight requests (0 while Starting).
  [[nodiscard]] std::size_t inflight() const noexcept {
    return service_ ? service_->inflight() : 0;
  }
  [[nodiscard]] bool has_capacity() const noexcept {
    return ready() && service_ != nullptr &&
           inflight() < static_cast<std::size_t>(spec_.effective_concurrency());
  }

  /// Simulated instant the pod was created (reservation + cold start began).
  [[nodiscard]] sim::SimTime created_at() const noexcept { return created_at_; }
  /// Simulated instant the pod became Ready (-1 if it never did).
  [[nodiscard]] sim::SimTime ready_at() const noexcept { return ready_at_; }
  /// Last instant the pod went idle (used by scale-to-zero); updated by the
  /// platform on request completion.
  [[nodiscard]] sim::SimTime idle_since() const noexcept { return idle_since_; }
  void touch_idle(sim::SimTime now) noexcept { idle_since_ = now; }

 private:
  sim::Context& sim_;
  std::string name_;
  const KnativeServiceSpec& spec_;
  cluster::Node& node_;
  storage::DataStore& fs_;
  PodState state_ = PodState::kStarting;
  cluster::QuotaGroupId quota_group_ = cluster::kNoQuotaGroup;
  std::unique_ptr<wfbench::WfBenchService> service_;
  sim::EventId cold_start_event_ = 0;
  sim::SimTime created_at_ = 0;
  sim::SimTime ready_at_ = -1;
  sim::SimTime idle_since_ = 0;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TraceRecorder::Pid trace_pid_ = 0;
  obs::TraceRecorder::Tid trace_lane_ = 0;
  metrics::Histogram* cold_start_hist_ = nullptr;
};

}  // namespace wfs::faas
