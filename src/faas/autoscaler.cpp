#include "faas/autoscaler.h"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace wfs::faas {

Autoscaler::Autoscaler(AutoscalerConfig config, double target_concurrency, int min_scale,
                       int max_scale)
    : config_(config), target_(target_concurrency), min_scale_(min_scale),
      max_scale_(max_scale) {
  if (target_ <= 0.0) throw std::invalid_argument("Autoscaler: target must be positive");
  if (max_scale_ < min_scale_) throw std::invalid_argument("Autoscaler: max < min scale");
}

void Autoscaler::observe(sim::SimTime now, double concurrency) {
  samples_.push_back(Sample{now, concurrency});
  if (concurrency > 0.0) {
    last_active_ = now;
    saw_traffic_ = true;
  }
  const sim::SimTime horizon = now - config_.stable_window;
  while (!samples_.empty() && samples_.front().time < horizon) samples_.pop_front();
}

double Autoscaler::window_average(sim::SimTime now, sim::SimTime window) const {
  const sim::SimTime horizon = now - window;
  double sum = 0.0;
  std::size_t count = 0;
  for (const Sample& s : samples_) {
    if (s.time < horizon) continue;
    sum += s.value;
    ++count;
  }
  if (count == 0) {
    // Empty window (sampling cadence coarser than the window, e.g. a panic
    // window shorter than the observe interval): fall back to the newest
    // sample instead of reading "no demand" mid-burst — 0.0 here meant the
    // panic path could never trigger under sparse observation.
    return samples_.empty() ? 0.0 : samples_.back().value;
  }
  return sum / static_cast<double>(count);
}

double Autoscaler::stable_average(sim::SimTime now) const {
  return window_average(now, config_.stable_window);
}

double Autoscaler::panic_average(sim::SimTime now) const {
  return window_average(now, config_.panic_window);
}

Autoscaler::Decision Autoscaler::decide(sim::SimTime now, int ready_pods) {
  const double stable = stable_average(now);
  const double panic = panic_average(now);
  const int desired_stable = static_cast<int>(std::ceil(stable / target_));
  const int desired_panic = static_cast<int>(std::ceil(panic / target_));

  // Enter (or extend) panic when the short window shows a burst the ready
  // fleet cannot absorb. Compared in floating point: truncating
  // panic_threshold * ready_pods to int would enter panic one pod too early
  // for fractional thresholds (e.g. 7 >= int(2.5 * 3) = 7, but 7 < 7.5).
  if (ready_pods > 0 &&
      static_cast<double>(desired_panic) >=
          config_.panic_threshold * static_cast<double>(ready_pods)) {
    if (panic_until_ == 0) panic_peak_desired_ = 0;
    panic_until_ = now + config_.stable_window;
  }
  if (panic_until_ != 0 && now >= panic_until_) {
    panic_until_ = 0;
    panic_peak_desired_ = 0;
  }

  Decision decision;
  if (panic_until_ != 0) {
    decision.panic = true;
    panic_peak_desired_ = std::max({panic_peak_desired_, desired_panic, desired_stable});
    // In panic mode Knative never scales down.
    decision.desired = std::max(panic_peak_desired_, ready_pods);
  } else {
    decision.desired = desired_stable;
  }

  // Scale-to-zero gating: keep the last pod until grace elapses.
  if (decision.desired == 0 && saw_traffic_ && ready_pods > 0 &&
      now - last_active_ < config_.scale_to_zero_grace) {
    decision.desired = 1;
  }

  decision.desired = std::clamp(decision.desired, min_scale_, max_scale_);
  return decision;
}

}  // namespace wfs::faas
