// Knative service specification — the deployment-time knobs of the
// paper's `service.yaml` plus the autoscaler annotations.
#pragma once

#include <cstdint>
#include <string>

#include "faas/activator.h"
#include "faas/kube_scheduler.h"
#include "sim/clock.h"
#include "wfbench/service.h"

namespace wfs::faas {

struct AutoscalerConfig {
  /// KPA evaluation period.
  sim::SimTime tick = 2 * sim::kSecond;
  /// Averaging window for the stable concurrency signal.
  sim::SimTime stable_window = 60 * sim::kSecond;
  /// Short window used to detect bursts.
  sim::SimTime panic_window = 6 * sim::kSecond;
  /// Enter panic mode when panic-window desired > threshold x ready pods.
  double panic_threshold = 2.0;
  /// Idle time before the last pods are scaled to zero.
  sim::SimTime scale_to_zero_grace = 30 * sim::kSecond;
  /// Fraction of container concurrency the autoscaler targets (Knative's
  /// container-concurrency-target-percentage, default 70%).
  double target_utilization = 0.7;
};

struct KnativeServiceSpec {
  std::string name = "wfbench";
  /// Routing authority ("host:port") the service answers on; derived from
  /// the translator's service_url by the platform when left empty.
  std::string authority;

  /// The serving container (workers, PM, footprints) — shared with the
  /// local-container runtime so both paradigms run the same wfbench app.
  wfbench::ServiceConfig container;

  // Kubernetes resource model.
  double cpu_request = 2.0;                       // cores reserved per pod
  std::uint64_t memory_request = 2ULL << 30;      // bytes reserved per pod
  /// cgroup quota per pod (0 = no CPU limit).
  double cpu_limit = 0.0;
  /// Container memory limit per pod (0 = unlimited); mirrored into the
  /// wfbench ServiceConfig at pod creation.
  std::uint64_t memory_limit = 0;

  // Autoscaling bounds.
  int min_scale = 0;
  int max_scale = 64;
  /// Requests a pod accepts concurrently; 0 = the container's worker count.
  int container_concurrency = 0;

  /// Pod cold-start latency (image pull cached; sandbox + runtime boot).
  sim::SimTime cold_start = sim::from_seconds(2.5);

  /// Pod placement scoring (kube NodeResourcesFit): spread or bin-pack.
  KubeScheduler::Strategy scheduling = KubeScheduler::Strategy::kLeastAllocated;

  /// Score pod placement by cached input bytes for the pending tasks,
  /// falling back to the strategy above when nothing relevant is cached.
  /// Only meaningful when the platform has a data cache attached
  /// (KnativePlatform::set_data_cache).
  bool cache_aware_placement = false;

  /// Chaos injection: per autoscaler tick, each ready pod crashes with this
  /// probability (in-flight requests answer 503; the autoscaler replaces the
  /// pod). 0 disables. Used to exercise the WFM's retry fault tolerance.
  double chaos_pod_kill_rate = 0.0;

  AutoscalerConfig autoscaler;

  /// Per-tenant admission control at the activator; default-constructed
  /// (all zeros) keeps the exact single-tenant FIFO behaviour.
  AdmissionConfig admission;

  /// Effective concurrency limit per pod.
  [[nodiscard]] int effective_concurrency() const noexcept {
    return container_concurrency > 0 ? container_concurrency : container.workers;
  }
  /// The per-pod concurrency the autoscaler aims for.
  [[nodiscard]] double target_concurrency() const noexcept {
    return autoscaler.target_utilization * static_cast<double>(effective_concurrency());
  }

  /// Fastest spontaneous platform action (pod boot or an autoscaler tick) —
  /// the faas layer's contribution to a sharded simulation's conservative
  /// lookahead. All other platform interactions ride the router and are
  /// covered by its minimum hop latency.
  [[nodiscard]] sim::SimTime min_edge_latency() const noexcept {
    return cold_start < autoscaler.tick ? cold_start : autoscaler.tick;
  }
};

}  // namespace wfs::faas
