#include "faas/platform.h"

#include <algorithm>
#include <stdexcept>

#include "json/parse.h"
#include "metrics/registry.h"
#include "storage/cached_store.h"
#include "support/format.h"
#include "support/strings.h"
#include "support/log.h"

namespace wfs::faas {

KnativePlatform::KnativePlatform(sim::Context& sim, cluster::Cluster& cluster,
                                 storage::DataStore& fs, net::Router& router,
                                 KnativeServiceSpec spec)
    : sim_(sim),
      cluster_(cluster),
      fs_(fs),
      router_(router),
      spec_(std::move(spec)),
      authority_(spec_.authority),
      scheduler_(cluster, spec_.scheduling),
      autoscaler_(spec_.autoscaler, spec_.target_concurrency(), spec_.min_scale,
                  spec_.max_scale),
      scaler_loop_(sim, spec_.autoscaler.tick, [this](sim::SimTime now) { autoscale_tick(now); }) {
  if (authority_.empty()) {
    throw std::invalid_argument("KnativePlatform: spec.authority must be set");
  }
  activator_.set_admission(spec_.admission);
}

KnativePlatform::~KnativePlatform() { shutdown(); }

void KnativePlatform::set_trace(obs::TraceRecorder* trace) {
  if (trace == nullptr || !trace->enabled()) {
    trace_ = nullptr;
    return;
  }
  trace_ = trace;
  trace_pid_ = trace_->process(support::format("faas:{}", spec_.name));
  autoscaler_lane_ = trace_->lane(trace_pid_, "autoscaler");
  activator_lane_ = trace_->lane(trace_pid_, "activator");
}

void KnativePlatform::set_metrics(metrics::MetricsRegistry* registry) {
  if (registry == nullptr) {
    cold_start_hist_ = nullptr;
    pods_created_metric_ = nullptr;
    pods_terminated_metric_ = nullptr;
    scale_ups_metric_ = nullptr;
    scale_downs_metric_ = nullptr;
    panic_ticks_metric_ = nullptr;
    scheduling_failures_metric_ = nullptr;
    ready_pods_metric_ = nullptr;
    desired_pods_metric_ = nullptr;
    activator_.set_metrics(nullptr, nullptr);
    activator_.set_tenant_metrics(nullptr, "");
    return;
  }
  const metrics::LabelSet labels{{"service", spec_.name}};
  cold_start_hist_ = &registry->histogram(
      "cold_start_seconds", "Pod creation to Ready duration, seconds", labels);
  pods_created_metric_ =
      &registry->counter("pods_created_total", "Pods created (each pays a cold start)", labels);
  pods_terminated_metric_ = &registry->counter(
      "pods_terminated_total", "Pods terminated (scale-down, chaos, shutdown)", labels);
  scale_ups_metric_ = &registry->counter(
      "autoscaler_scale_ups_total", "Autoscaler decisions that added pods", labels);
  scale_downs_metric_ = &registry->counter(
      "autoscaler_scale_downs_total", "Autoscaler decisions that removed pods", labels);
  panic_ticks_metric_ = &registry->counter(
      "autoscaler_panic_ticks_total", "Autoscaler ticks spent in panic mode", labels);
  scheduling_failures_metric_ = &registry->counter(
      "pod_scheduling_failures_total", "Pod placements rejected for lack of resources", labels);
  ready_pods_metric_ =
      &registry->gauge("ready_pods", "Ready pods as of the last autoscaler tick", labels);
  desired_pods_metric_ = &registry->gauge(
      "desired_pods", "Autoscaler desired scale as of the last tick", labels);
  activator_.set_metrics(
      &registry->counter("activator_buffered_total",
                         "Requests buffered in the activator awaiting capacity", labels),
      &registry->gauge("activator_queue_depth", "Requests currently buffered", labels));
  activator_.set_tenant_metrics(registry, spec_.name);
}

void KnativePlatform::set_data_cache(storage::CachedStore* cache) {
  cache_ = cache;
  scheduler_.set_data_cache(spec_.cache_aware_placement ? cache : nullptr);
}

void KnativePlatform::deploy() {
  if (deployed_) return;
  deployed_ = true;
  router_.bind(authority_, [this](const net::HttpRequest& request,
                                  std::shared_ptr<net::Responder> responder) {
    handle_request(request, std::move(responder));
  });
  scale_up(spec_.min_scale);
  scaler_loop_.start(spec_.autoscaler.tick);
  WFS_LOG_INFO("faas", "service {} deployed at {}", spec_.name, authority_);
}

void KnativePlatform::shutdown() {
  if (!deployed_) return;
  deployed_ = false;
  scaler_loop_.stop();
  router_.unbind(authority_);
  activator_.drain_with_error(
      net::HttpResponse::service_unavailable("knative service deleted"), sim_.now());
  for (auto& pod : pods_) {
    if (pod->service() != nullptr) retired_oom_failures_ += pod->service()->stats().oom_failures;
    pod->terminate();
    ++stats_.pods_terminated;
    if (pods_terminated_metric_ != nullptr) pods_terminated_metric_->inc();
  }
  pods_.clear();
}

int KnativePlatform::ready_pods() const noexcept {
  int count = 0;
  for (const auto& pod : pods_) count += pod->ready() ? 1 : 0;
  return count;
}

int KnativePlatform::starting_pods() const noexcept {
  int count = 0;
  for (const auto& pod : pods_) count += pod->state() == PodState::kStarting ? 1 : 0;
  return count;
}

std::size_t KnativePlatform::inflight() const noexcept {
  std::size_t total = activator_.depth();
  for (const auto& pod : pods_) total += pod->inflight();
  return total;
}

std::uint64_t KnativePlatform::service_oom_failures() const noexcept {
  std::uint64_t total = retired_oom_failures_;
  for (const auto& pod : pods_) {
    if (pod->service() != nullptr) total += pod->service()->stats().oom_failures;
  }
  return total;
}

void KnativePlatform::handle_request(const net::HttpRequest& request,
                                     std::shared_ptr<net::Responder> responder) {
  ++stats_.requests;
  wfbench::TaskParams params;
  try {
    params = wfbench::task_params_from_json(json::parse(request.body));
  } catch (const std::exception& e) {
    ++stats_.bad_requests;
    responder->respond(net::HttpResponse::bad_request(e.what()));
    return;
  }
  activator_.enqueue(std::move(params),
                     [this, responder](net::HttpResponse response) {
                       if (response.ok()) {
                         ++stats_.completed;
                       } else {
                         ++stats_.failed;
                       }
                       responder->respond(std::move(response));
                     },
                     sim_.now());
  pump();
}

Pod* KnativePlatform::pick_pod() {
  // Least-loaded ready pod with spare concurrency (the activator's
  // load-balancing policy).
  Pod* best = nullptr;
  std::size_t best_inflight = 0;
  for (auto& pod : pods_) {
    if (!pod->has_capacity()) continue;
    if (best == nullptr || pod->inflight() < best_inflight) {
      best = pod.get();
      best_inflight = pod->inflight();
    }
  }
  return best;
}

void KnativePlatform::pump() {
  while (!activator_.empty()) {
    Pod* pod = pick_pod();
    if (pod == nullptr) return;  // autoscaler will create capacity
    // try_pop honours per-tenant in-flight quotas and fair ordering; without
    // admission it is the same FIFO pop as before. nullopt with a non-empty
    // buffer means every queued tenant is at its quota — completions below
    // re-pump as they release quota.
    std::optional<Activator::Buffered> popped = activator_.try_pop(sim_.now());
    if (!popped) return;
    Activator::Buffered buffered = std::move(*popped);
    if (trace_ != nullptr && sim_.now() > buffered.enqueued_at) {
      json::Object args;
      args.set("task", buffered.params.name);
      trace_->complete(trace_pid_, activator_lane_, "buffered", "activator-queue",
                       buffered.enqueued_at, sim_.now(), std::move(args));
    }
    // Server-Timing: activator buffering, and the part of it that overlapped
    // the serving pod's boot — the request-visible cold-start cost.
    const double wait = sim::to_seconds(sim_.now() - buffered.enqueued_at);
    const double cold =
        std::clamp(sim::to_seconds(pod->ready_at() - buffered.enqueued_at), 0.0, wait);
    auto done = std::move(buffered.done);
    std::string tenant = buffered.params.tenant;
    pod->service()->handle(
        buffered.params,
        [this, pod, wait, cold, tenant = std::move(tenant),
         done = std::move(done)](net::HttpResponse response) {
          pod->touch_idle(sim_.now());
          activator_.release(tenant);
          response.timing.queue_seconds += wait;
          response.timing.cold_start_seconds += cold;
          done(std::move(response));
          // Capacity freed: release buffered work.
          pump();
        });
  }
}

void KnativePlatform::autoscale_tick(sim::SimTime now) {
  // Chaos injection first: crashed pods answer 503 to their in-flight
  // requests (via the service shutdown path) and are replaced by the
  // regular scaling logic below.
  if (spec_.chaos_pod_kill_rate > 0.0) {
    for (auto& pod : pods_) {
      if (pod->ready() && chaos_rng_.chance(spec_.chaos_pod_kill_rate)) {
        WFS_LOG_DEBUG("faas", "chaos: killing pod {}", pod->name());
        if (pod->service() != nullptr) {
          retired_oom_failures_ += pod->service()->stats().oom_failures;
        }
        pod->terminate();
        ++stats_.chaos_kills;
        ++stats_.pods_terminated;
        if (pods_terminated_metric_ != nullptr) pods_terminated_metric_->inc();
      }
    }
    reap_terminated();
  }
  autoscaler_.observe(now, static_cast<double>(inflight()));
  const int ready = ready_pods();
  const int starting = starting_pods();
  const Autoscaler::Decision decision = autoscaler_.decide(now, ready);
  if (decision.panic) {
    ++stats_.panic_ticks;
    if (panic_ticks_metric_ != nullptr) panic_ticks_metric_->inc();
  }
  if (ready_pods_metric_ != nullptr) ready_pods_metric_->set(static_cast<double>(ready));
  if (desired_pods_metric_ != nullptr) {
    desired_pods_metric_->set(static_cast<double>(decision.desired));
  }
  if (trace_ != nullptr) {
    json::Object args;
    args.set("stable_avg", autoscaler_.stable_average(now));
    args.set("panic_avg", autoscaler_.panic_average(now));
    args.set("ready", static_cast<std::int64_t>(ready));
    args.set("starting", static_cast<std::int64_t>(starting));
    args.set("desired", static_cast<std::int64_t>(decision.desired));
    args.set("panic", decision.panic);
    trace_->instant(trace_pid_, autoscaler_lane_, "decide", "autoscaler", now,
                    std::move(args));
    trace_->counter(trace_pid_, "ready_pods", now, static_cast<double>(ready));
    trace_->counter(trace_pid_, "desired_pods", now,
                    static_cast<double>(decision.desired));
    trace_->counter(trace_pid_, "inflight", now, static_cast<double>(inflight()));
  }

  const int current = ready + starting;
  if (decision.desired > current) {
    if (scale_ups_metric_ != nullptr) scale_ups_metric_->inc();
    scale_up(decision.desired - current);
  } else if (decision.desired < current) {
    if (scale_downs_metric_ != nullptr) scale_downs_metric_->inc();
    scale_down(current - decision.desired);
  }
  reap_terminated();
  stats_.max_ready_pods = std::max<std::uint64_t>(stats_.max_ready_pods,
                                                  static_cast<std::uint64_t>(ready_pods()));
}

void KnativePlatform::scale_up(int count) {
  // Locality hints: the buffered tasks' input sets are what a new pod will
  // read first, so the scheduler can score nodes by how much of that data
  // their caches already hold.
  std::vector<std::string> locality_inputs;
  if (cache_ != nullptr && spec_.cache_aware_placement) {
    for (const Activator::Buffered& buffered : activator_.buffered()) {
      locality_inputs.insert(locality_inputs.end(), buffered.params.inputs.begin(),
                             buffered.params.inputs.end());
    }
  }
  for (int i = 0; i < count; ++i) {
    cluster::Node* node =
        scheduler_.place(spec_.cpu_request, spec_.memory_request, locality_inputs);
    if (node == nullptr) {
      // Unschedulable: the cluster is out of allocatable resources. The pod
      // would sit Pending on a real cluster; we retry next tick.
      ++stats_.scheduling_failures;
      if (scheduling_failures_metric_ != nullptr) scheduling_failures_metric_->inc();
      WFS_LOG_DEBUG("faas", "pod unschedulable ({} pods live)", pods_.size());
      return;
    }
    const std::string name =
        support::format("{}-{}", spec_.name, support::pad_id(next_pod_ordinal_++, 5));
    storage::DataStore& pod_fs =
        cache_ != nullptr ? cache_->node_view(node->name()) : fs_;
    pods_.push_back(std::make_unique<Pod>(
        sim_, name, spec_, *node, pod_fs,
        [this](Pod& pod) {
          stats_.cold_start_seconds +=
              sim::to_seconds(pod.ready_at() - pod.created_at());
          pump();
        },
        trace_, trace_pid_, cold_start_hist_));
    ++stats_.pods_created;
    if (pods_created_metric_ != nullptr) pods_created_metric_->inc();
  }
}

void KnativePlatform::scale_down(int count) {
  // Terminate idle ready pods first, oldest-idle first. Busy pods are never
  // killed (Knative waits for in-flight requests to finish).
  std::vector<Pod*> candidates;
  for (auto& pod : pods_) {
    if (pod->ready() && pod->inflight() == 0) candidates.push_back(pod.get());
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Pod* a, const Pod* b) { return a->idle_since() < b->idle_since(); });
  for (Pod* pod : candidates) {
    if (count == 0) break;
    if (pod->service() != nullptr) retired_oom_failures_ += pod->service()->stats().oom_failures;
    pod->terminate();
    ++stats_.pods_terminated;
    if (pods_terminated_metric_ != nullptr) pods_terminated_metric_->inc();
    --count;
  }
}

void KnativePlatform::reap_terminated() {
  std::erase_if(pods_, [](const std::unique_ptr<Pod>& pod) {
    return pod->state() == PodState::kTerminated;
  });
}

}  // namespace wfs::faas
