// Kubernetes-like pod placement over the simulated cluster.
//
// Implements the default LeastAllocated spread: among nodes whose free
// (unreserved) CPU and memory fit the pod's requests, pick the one with the
// lowest reserved fraction. Returns nullptr when nothing fits — the pod
// stays Pending (the condition behind the paper's "experiments were not
// concluded ... limits being reached" for large fine-grained runs).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "cluster/cluster.h"

namespace wfs::storage {
class CachedStore;
}  // namespace wfs::storage

namespace wfs::faas {

class KubeScheduler {
 public:
  /// Kubernetes NodeResourcesFit scoring strategies.
  enum class Strategy {
    kLeastAllocated,  // spread (the kube default)
    kMostAllocated,   // bin-pack (consolidate, free whole nodes)
  };

  explicit KubeScheduler(cluster::Cluster& cluster,
                         Strategy strategy = Strategy::kLeastAllocated)
      : cluster_(cluster), strategy_(strategy) {}

  /// Chooses a node that can host the requests; does NOT reserve.
  [[nodiscard]] cluster::Node* place(double cpu_request, std::uint64_t memory_request);

  /// Locality-aware placement: among feasible nodes, the one holding the
  /// most cached bytes of `locality_inputs` wins; the configured strategy
  /// score breaks ties and handles the nothing-cached fallback. Identical
  /// to the plain overload when no cache is attached or the input set is
  /// empty.
  [[nodiscard]] cluster::Node* place(double cpu_request, std::uint64_t memory_request,
                                     const std::vector<std::string>& locality_inputs);

  /// Attaches the data cache the locality score reads (nullptr detaches —
  /// placement falls back to the pure strategy score).
  void set_data_cache(const storage::CachedStore* cache) noexcept { cache_ = cache; }

  [[nodiscard]] Strategy strategy() const noexcept { return strategy_; }
  [[nodiscard]] std::uint64_t placements() const noexcept { return placements_; }
  [[nodiscard]] std::uint64_t failures() const noexcept { return failures_; }
  /// Placements decided by cached input bytes rather than the strategy score.
  [[nodiscard]] std::uint64_t locality_placements() const noexcept {
    return locality_placements_;
  }

 private:
  cluster::Cluster& cluster_;
  Strategy strategy_;
  const storage::CachedStore* cache_ = nullptr;
  std::uint64_t placements_ = 0;
  std::uint64_t failures_ = 0;
  std::uint64_t locality_placements_ = 0;
};

}  // namespace wfs::faas
