// The Knative activator: buffers requests that arrive while no ready pod
// has spare concurrency, and releases them as capacity appears. Also the
// platform's source of the "observed concurrency" signal (queued requests
// count toward concurrency so the autoscaler sees demand before pods
// exist).
//
// Multi-tenant admission control (all knobs default off = the exact paper
// behaviour): each request may carry a tenant label, and the activator can
//   * bound the per-tenant queue — requests over the bound are rejected
//     immediately with 503 + a Retry-After hint instead of growing the
//     buffer without limit (the WFM retry path honours the hint);
//   * cap per-tenant in-flight requests — a tenant at its quota keeps its
//     requests buffered even while pods have spare concurrency, so one
//     heavy tenant cannot occupy the whole fleet;
//   * replace the blind FIFO dequeue with weighted-fair ordering across
//     tenants (stride scheduling: the tenant with the smallest virtual
//     time is served next; FIFO within a tenant).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <optional>
#include <string>
#include <utility>

#include "net/http.h"
#include "sim/clock.h"
#include "wfbench/task_params.h"

namespace wfs::metrics {
class Counter;
class Gauge;
class MetricsRegistry;
}  // namespace wfs::metrics

namespace wfs::faas {

/// Per-tenant admission policy. Zero / false everywhere (the default)
/// disables admission entirely: unbounded queue, no quota, FIFO pop — the
/// exact single-tenant code path.
struct AdmissionConfig {
  /// Max requests of one tenant executing on pods at once (0 = unlimited).
  std::size_t tenant_inflight_limit = 0;
  /// Max requests of one tenant buffered at once; the excess is rejected
  /// with 503 + retry_after_ms (0 = unbounded).
  std::size_t tenant_queue_limit = 0;
  /// Weighted-fair dequeue across tenants instead of global FIFO.
  bool fair_dequeue = false;
  /// Retry-After hint attached to queue-bound rejections.
  int retry_after_ms = 500;
  /// Fair-dequeue weights by tenant name (absent = 1.0). A tenant with
  /// weight 2 is served twice as often as a weight-1 tenant under
  /// contention.
  std::map<std::string, double> weights;

  [[nodiscard]] bool enabled() const noexcept {
    return tenant_inflight_limit > 0 || tenant_queue_limit > 0 || fair_dequeue;
  }
};

class Activator {
 public:
  using ResponseCallback = std::function<void(net::HttpResponse)>;

  struct Buffered {
    wfbench::TaskParams params;
    ResponseCallback done;
    sim::SimTime enqueued_at;
  };

  /// Per-tenant admission counters (reporting; metrics mirror them).
  struct TenantCounters {
    std::uint64_t accepted = 0;   // enqueued past admission
    std::uint64_t rejected = 0;   // bounced at the queue bound
    std::uint64_t dequeued = 0;   // handed to a pod
    std::size_t queued = 0;       // currently buffered
    std::size_t inflight = 0;     // currently executing (pop .. release)
  };

  /// Installs the admission policy. Call before traffic; the default is
  /// admission off (the exact single-tenant FIFO path).
  void set_admission(AdmissionConfig admission) { admission_ = std::move(admission); }
  [[nodiscard]] const AdmissionConfig& admission() const noexcept { return admission_; }

  /// Attaches pre-resolved metric handles (platform owns the labels):
  /// buffered_total counts every enqueue, depth mirrors the queue size.
  /// nullptrs disable.
  void set_metrics(metrics::Counter* buffered_total, metrics::Gauge* depth) noexcept {
    buffered_metric_ = buffered_total;
    depth_metric_ = depth;
  }

  /// Attaches a registry for per-tenant labeled counters
  /// (activator_tenant_{accepted,rejected}_total{service,tenant} and the
  /// activator_tenant_inflight gauge). Handles resolve lazily, only for
  /// requests that actually carry a tenant label — tenant-less runs create
  /// no new metric families. nullptr disables.
  void set_tenant_metrics(metrics::MetricsRegistry* registry, std::string service_label);

  /// Buffers (or, over the tenant queue bound, rejects) one request.
  void enqueue(wfbench::TaskParams params, ResponseCallback done, sim::SimTime now);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }

  /// Pops the oldest buffered request; caller must have capacity. Throws
  /// when empty. Bypasses quotas — prefer try_pop under admission.
  [[nodiscard]] Buffered pop(sim::SimTime now);

  /// Dequeues the next admissible request: FIFO without admission; under a
  /// quota, the oldest request of a tenant below its in-flight limit (in
  /// weighted-fair tenant order when fair_dequeue is on). nullopt when the
  /// buffer is empty or every queued tenant is at its quota.
  [[nodiscard]] std::optional<Buffered> try_pop(sim::SimTime now);

  /// Marks one in-flight request of `tenant` complete, freeing quota.
  void release(const std::string& tenant);

  /// The queue, oldest first — the platform's locality hint source (the
  /// buffered tasks' input sets are what a new pod will read first).
  [[nodiscard]] const std::deque<Buffered>& buffered() const noexcept { return queue_; }

  /// Fails everything in the buffer (platform shutdown). Queue wait up to
  /// `now` is accounted exactly like pop's, so overloaded/failed runs keep
  /// an honest total_wait_seconds. Callbacks run off a local copy of the
  /// queue: one that re-enqueues (the WFM retry path) appends to a fresh
  /// buffer instead of mutating the deque mid-iteration.
  void drain_with_error(const net::HttpResponse& response, sim::SimTime now);

  [[nodiscard]] std::uint64_t total_buffered() const noexcept { return total_buffered_; }
  [[nodiscard]] std::uint64_t total_rejected() const noexcept { return total_rejected_; }
  [[nodiscard]] std::uint64_t max_depth() const noexcept { return max_depth_; }
  /// Cumulative seconds requests spent queued (cold-start visible cost).
  [[nodiscard]] double total_wait_seconds() const noexcept { return total_wait_seconds_; }

  /// Admission counters by tenant name (ordered, hence deterministic).
  /// Empty until a request carries a tenant label or admission is enabled.
  [[nodiscard]] const std::map<std::string, TenantCounters>& tenants() const noexcept {
    return tenants_;
  }

 private:
  struct TenantState {
    TenantCounters counters;
    /// Stride-scheduling virtual time; advanced by 1/weight per dequeue.
    double virtual_time = 0.0;
    double weight = 1.0;
    metrics::Counter* accepted_metric = nullptr;
    metrics::Counter* rejected_metric = nullptr;
    metrics::Gauge* inflight_metric = nullptr;
  };

  void update_depth_metric() noexcept;
  TenantState& tenant_state(const std::string& tenant);
  [[nodiscard]] bool under_quota(const TenantState& state) const noexcept {
    return admission_.tenant_inflight_limit == 0 ||
           state.counters.inflight < admission_.tenant_inflight_limit;
  }
  /// Removes and returns queue_[index], maintaining order.
  Buffered take_at(std::size_t index, sim::SimTime now);

  std::deque<Buffered> queue_;
  AdmissionConfig admission_;
  std::map<std::string, TenantState> tenants_state_;
  std::map<std::string, TenantCounters> tenants_;
  std::uint64_t total_buffered_ = 0;
  std::uint64_t total_rejected_ = 0;
  std::uint64_t max_depth_ = 0;
  double total_wait_seconds_ = 0.0;
  metrics::Counter* buffered_metric_ = nullptr;
  metrics::Gauge* depth_metric_ = nullptr;
  metrics::MetricsRegistry* tenant_registry_ = nullptr;
  std::string service_label_;
};

}  // namespace wfs::faas
