// The Knative activator: buffers requests that arrive while no ready pod
// has spare concurrency, and releases them as capacity appears. Also the
// platform's source of the "observed concurrency" signal (queued requests
// count toward concurrency so the autoscaler sees demand before pods
// exist).
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <utility>

#include "net/http.h"
#include "sim/clock.h"
#include "wfbench/task_params.h"

namespace wfs::metrics {
class Counter;
class Gauge;
}  // namespace wfs::metrics

namespace wfs::faas {

class Activator {
 public:
  using ResponseCallback = std::function<void(net::HttpResponse)>;

  struct Buffered {
    wfbench::TaskParams params;
    ResponseCallback done;
    sim::SimTime enqueued_at;
  };

  /// Attaches pre-resolved metric handles (platform owns the labels):
  /// buffered_total counts every enqueue, depth mirrors the queue size.
  /// nullptrs disable.
  void set_metrics(metrics::Counter* buffered_total, metrics::Gauge* depth) noexcept {
    buffered_metric_ = buffered_total;
    depth_metric_ = depth;
  }

  void enqueue(wfbench::TaskParams params, ResponseCallback done, sim::SimTime now);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t depth() const noexcept { return queue_.size(); }

  /// Pops the oldest buffered request; caller must have capacity.
  [[nodiscard]] Buffered pop(sim::SimTime now);

  /// The queue, oldest first — the platform's locality hint source (the
  /// buffered tasks' input sets are what a new pod will read first).
  [[nodiscard]] const std::deque<Buffered>& buffered() const noexcept { return queue_; }

  /// Fails everything in the buffer (platform shutdown).
  void drain_with_error(const net::HttpResponse& response);

  [[nodiscard]] std::uint64_t total_buffered() const noexcept { return total_buffered_; }
  [[nodiscard]] std::uint64_t max_depth() const noexcept { return max_depth_; }
  /// Cumulative seconds requests spent queued (cold-start visible cost).
  [[nodiscard]] double total_wait_seconds() const noexcept { return total_wait_seconds_; }

 private:
  void update_depth_metric() noexcept;

  std::deque<Buffered> queue_;
  std::uint64_t total_buffered_ = 0;
  std::uint64_t max_depth_ = 0;
  double total_wait_seconds_ = 0.0;
  metrics::Counter* buffered_metric_ = nullptr;
  metrics::Gauge* depth_metric_ = nullptr;
};

}  // namespace wfs::faas
