#include "faas/activator.h"

#include <algorithm>
#include <limits>
#include <stdexcept>

#include "metrics/registry.h"

namespace wfs::faas {

void Activator::update_depth_metric() noexcept {
  if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(queue_.size()));
}

void Activator::set_tenant_metrics(metrics::MetricsRegistry* registry,
                                   std::string service_label) {
  tenant_registry_ = registry;
  service_label_ = std::move(service_label);
}

Activator::TenantState& Activator::tenant_state(const std::string& tenant) {
  auto [it, inserted] = tenants_state_.try_emplace(tenant);
  TenantState& state = it->second;
  if (inserted) {
    tenants_.try_emplace(tenant);
    if (auto weight = admission_.weights.find(tenant); weight != admission_.weights.end()) {
      state.weight = std::max(weight->second, 1e-9);
    }
    // New tenants start at the current minimum virtual time, not zero, so a
    // late joiner cannot replay the head start the others already spent.
    double min_vt = std::numeric_limits<double>::infinity();
    for (const auto& [name, other] : tenants_state_) {
      if (name != tenant) min_vt = std::min(min_vt, other.virtual_time);
    }
    if (min_vt != std::numeric_limits<double>::infinity()) state.virtual_time = min_vt;
    if (tenant_registry_ != nullptr && !tenant.empty()) {
      const metrics::LabelSet labels{{"service", service_label_}, {"tenant", tenant}};
      state.accepted_metric = &tenant_registry_->counter(
          "activator_tenant_accepted_total", "Requests admitted into the buffer by tenant",
          labels);
      state.rejected_metric = &tenant_registry_->counter(
          "activator_tenant_rejected_total",
          "Requests rejected at the per-tenant queue bound", labels);
      state.inflight_metric = &tenant_registry_->gauge(
          "activator_tenant_inflight", "Requests of this tenant currently executing",
          labels);
    }
  }
  return state;
}

void Activator::enqueue(wfbench::TaskParams params, ResponseCallback done, sim::SimTime now) {
  const bool track_tenant = admission_.enabled() || !params.tenant.empty();
  if (track_tenant) {
    TenantState& state = tenant_state(params.tenant);
    if (admission_.tenant_queue_limit > 0 &&
        state.counters.queued >= admission_.tenant_queue_limit) {
      ++state.counters.rejected;
      tenants_[params.tenant].rejected = state.counters.rejected;
      ++total_rejected_;
      if (state.rejected_metric != nullptr) state.rejected_metric->inc();
      auto response = net::HttpResponse::service_unavailable("tenant queue limit reached");
      response.retry_after_ms = admission_.retry_after_ms;
      done(std::move(response));
      return;
    }
    ++state.counters.accepted;
    ++state.counters.queued;
    tenants_[params.tenant] = state.counters;
    if (state.accepted_metric != nullptr) state.accepted_metric->inc();
  }
  queue_.push_back(Buffered{std::move(params), std::move(done), now});
  ++total_buffered_;
  max_depth_ = std::max<std::uint64_t>(max_depth_, queue_.size());
  if (buffered_metric_ != nullptr) buffered_metric_->inc();
  update_depth_metric();
}

Activator::Buffered Activator::take_at(std::size_t index, sim::SimTime now) {
  Buffered out = std::move(queue_[index]);
  queue_.erase(queue_.begin() + static_cast<std::ptrdiff_t>(index));
  total_wait_seconds_ += sim::to_seconds(now - out.enqueued_at);
  if (admission_.enabled() || !out.params.tenant.empty()) {
    TenantState& state = tenant_state(out.params.tenant);
    --state.counters.queued;
    ++state.counters.dequeued;
    ++state.counters.inflight;
    state.virtual_time += 1.0 / state.weight;
    tenants_[out.params.tenant] = state.counters;
    if (state.inflight_metric != nullptr) {
      state.inflight_metric->set(static_cast<double>(state.counters.inflight));
    }
  }
  update_depth_metric();
  return out;
}

Activator::Buffered Activator::pop(sim::SimTime now) {
  if (queue_.empty()) throw std::logic_error("Activator::pop on empty queue");
  return take_at(0, now);
}

std::optional<Activator::Buffered> Activator::try_pop(sim::SimTime now) {
  if (queue_.empty()) return std::nullopt;
  if (!admission_.enabled()) return take_at(0, now);

  if (!admission_.fair_dequeue) {
    // FIFO scan: the oldest request whose tenant still has quota headroom.
    for (std::size_t i = 0; i < queue_.size(); ++i) {
      if (under_quota(tenant_state(queue_[i].params.tenant))) return take_at(i, now);
    }
    return std::nullopt;
  }

  // Weighted-fair: among tenants with a queued request and quota headroom,
  // serve the one with the smallest virtual time (ties break on tenant
  // name via the ordered scan below — deterministic). FIFO within a tenant
  // falls out of taking the first queue entry with that tenant label.
  const std::string* best_tenant = nullptr;
  std::size_t best_index = 0;
  double best_vt = std::numeric_limits<double>::infinity();
  for (std::size_t i = 0; i < queue_.size(); ++i) {
    const std::string& tenant = queue_[i].params.tenant;
    if (best_tenant != nullptr && tenant == *best_tenant) continue;
    TenantState& state = tenant_state(tenant);
    if (!under_quota(state)) continue;
    if (best_tenant == nullptr || state.virtual_time < best_vt ||
        (state.virtual_time == best_vt && tenant < *best_tenant)) {
      best_tenant = &queue_[i].params.tenant;
      best_index = i;
      best_vt = state.virtual_time;
    }
  }
  if (best_tenant == nullptr) return std::nullopt;
  // best_index is the first (oldest) entry of best_tenant only if no earlier
  // entry shares the label; find the tenant's true head.
  for (std::size_t i = 0; i < best_index; ++i) {
    if (queue_[i].params.tenant == *best_tenant) {
      best_index = i;
      break;
    }
  }
  return take_at(best_index, now);
}

void Activator::release(const std::string& tenant) {
  auto it = tenants_state_.find(tenant);
  if (it == tenants_state_.end() || it->second.counters.inflight == 0) return;
  --it->second.counters.inflight;
  tenants_[tenant].inflight = it->second.counters.inflight;
  if (it->second.inflight_metric != nullptr) {
    it->second.inflight_metric->set(static_cast<double>(it->second.counters.inflight));
  }
}

void Activator::drain_with_error(const net::HttpResponse& response, sim::SimTime now) {
  // Swap the buffer into a local before invoking callbacks: a callback that
  // re-enqueues (the WFM retry path does, after retry_after_ms) would
  // otherwise mutate queue_ mid-iteration — UB, and the re-enqueued request
  // would be wiped by the clear() below.
  std::deque<Buffered> drained;
  drained.swap(queue_);
  for (Buffered& buffered : drained) {
    // Same wait accounting as pop(): a request failed at drain spent just as
    // long in the queue as one a pod eventually served.
    total_wait_seconds_ += sim::to_seconds(now - buffered.enqueued_at);
    if (admission_.enabled() || !buffered.params.tenant.empty()) {
      TenantState& state = tenant_state(buffered.params.tenant);
      if (state.counters.queued > 0) --state.counters.queued;
      tenants_[buffered.params.tenant].queued = state.counters.queued;
    }
  }
  update_depth_metric();
  for (Buffered& buffered : drained) buffered.done(response);
}

}  // namespace wfs::faas
