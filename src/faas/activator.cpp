#include "faas/activator.h"

#include <algorithm>
#include <stdexcept>

#include "metrics/registry.h"

namespace wfs::faas {

void Activator::update_depth_metric() noexcept {
  if (depth_metric_ != nullptr) depth_metric_->set(static_cast<double>(queue_.size()));
}

void Activator::enqueue(wfbench::TaskParams params, ResponseCallback done, sim::SimTime now) {
  queue_.push_back(Buffered{std::move(params), std::move(done), now});
  ++total_buffered_;
  max_depth_ = std::max<std::uint64_t>(max_depth_, queue_.size());
  if (buffered_metric_ != nullptr) buffered_metric_->inc();
  update_depth_metric();
}

Activator::Buffered Activator::pop(sim::SimTime now) {
  if (queue_.empty()) throw std::logic_error("Activator::pop on empty queue");
  Buffered out = std::move(queue_.front());
  queue_.pop_front();
  total_wait_seconds_ += sim::to_seconds(now - out.enqueued_at);
  update_depth_metric();
  return out;
}

void Activator::drain_with_error(const net::HttpResponse& response) {
  for (Buffered& buffered : queue_) buffered.done(response);
  queue_.clear();
  update_depth_metric();
}

}  // namespace wfs::faas
