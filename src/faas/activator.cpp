#include "faas/activator.h"

#include <algorithm>
#include <stdexcept>

namespace wfs::faas {

void Activator::enqueue(wfbench::TaskParams params, ResponseCallback done, sim::SimTime now) {
  queue_.push_back(Buffered{std::move(params), std::move(done), now});
  ++total_buffered_;
  max_depth_ = std::max<std::uint64_t>(max_depth_, queue_.size());
}

Activator::Buffered Activator::pop(sim::SimTime now) {
  if (queue_.empty()) throw std::logic_error("Activator::pop on empty queue");
  Buffered out = std::move(queue_.front());
  queue_.pop_front();
  total_wait_seconds_ += sim::to_seconds(now - out.enqueued_at);
  return out;
}

void Activator::drain_with_error(const net::HttpResponse& response) {
  for (Buffered& buffered : queue_) buffered.done(response);
  queue_.clear();
}

}  // namespace wfs::faas
