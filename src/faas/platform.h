// The Knative-like serverless platform: routes HTTP invocations of the
// wfbench service into pods, autoscaled on observed concurrency.
//
// Composition (all built in this repo, per DESIGN.md):
//   net::Router  --> KnativePlatform::handle_request --> Activator (buffer)
//        --> Pod / WfBenchService (execute) --> response
// with a PeriodicTask driving Autoscaler decisions that create pods
// (KubeScheduler placement + cold start) or terminate idle ones
// (scale-to-zero), releasing their memory — the mechanism behind the
// paper's serverless resource-usage wins.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "cluster/cluster.h"
#include "faas/activator.h"
#include "faas/autoscaler.h"
#include "faas/kube_scheduler.h"
#include "faas/pod.h"
#include "faas/service_config.h"
#include "net/router.h"
#include "obs/trace_recorder.h"
#include "sim/periodic.h"
#include "support/rng.h"
#include "storage/data_store.h"

namespace wfs::metrics {
class MetricsRegistry;
class Counter;
class Gauge;
class Histogram;
}  // namespace wfs::metrics

namespace wfs::storage {
class CachedStore;
}  // namespace wfs::storage

namespace wfs::faas {

struct KnativePlatformStats {
  std::uint64_t requests = 0;
  std::uint64_t completed = 0;
  std::uint64_t failed = 0;
  std::uint64_t bad_requests = 0;
  std::uint64_t pods_created = 0;   // every creation pays a cold start
  std::uint64_t pods_terminated = 0;
  std::uint64_t max_ready_pods = 0;
  std::uint64_t scheduling_failures = 0;
  std::uint64_t panic_ticks = 0;
  std::uint64_t chaos_kills = 0;
  /// Total time pods spent cold-starting (creation -> Ready), seconds.
  /// Pods killed before reaching Ready do not contribute.
  double cold_start_seconds = 0.0;
};

class KnativePlatform {
 public:
  KnativePlatform(sim::Context& sim, cluster::Cluster& cluster,
                  storage::DataStore& fs, net::Router& router, KnativeServiceSpec spec);
  ~KnativePlatform();

  KnativePlatform(const KnativePlatform&) = delete;
  KnativePlatform& operator=(const KnativePlatform&) = delete;

  /// Attaches a shared trace recorder: pod lifecycle spans, autoscaler
  /// decisions (with stable/panic averages) and activator buffering are
  /// emitted under one process lane per service. Call before deploy() so
  /// the min_scale pods are covered. nullptr disables.
  void set_trace(obs::TraceRecorder* trace);

  /// Attaches a metrics registry: cold-start histogram, pod lifecycle and
  /// autoscaler decision counters, panic ticks, ready/desired gauges and
  /// activator depth — all labeled {service=<name>}. Handles resolve here,
  /// once; call before deploy(). nullptr disables.
  void set_metrics(metrics::MetricsRegistry* registry);

  /// Attaches a node-local data cache: new pods read and write through
  /// their node's view instead of the raw backing store, and — when the
  /// spec enables cache_aware_placement — the scheduler scores nodes by
  /// cached input bytes for the buffered tasks. Call before deploy() so
  /// the min_scale pods are wired too. nullptr detaches.
  void set_data_cache(storage::CachedStore* cache);

  /// Binds the service route and starts the autoscaler loop; creates
  /// min_scale pods immediately.
  void deploy();

  /// Unbinds, stops autoscaling, fails buffered requests, terminates pods.
  void shutdown();

  // Instantaneous gauges (sampler probes).
  [[nodiscard]] int ready_pods() const noexcept;
  [[nodiscard]] int starting_pods() const noexcept;
  [[nodiscard]] int total_pods() const noexcept { return static_cast<int>(pods_.size()); }
  [[nodiscard]] std::size_t inflight() const noexcept;
  [[nodiscard]] std::size_t activator_depth() const noexcept { return activator_.depth(); }

  [[nodiscard]] const KnativePlatformStats& stats() const noexcept { return stats_; }
  [[nodiscard]] const Activator& activator() const noexcept { return activator_; }
  [[nodiscard]] const KubeScheduler& scheduler() const noexcept { return scheduler_; }
  [[nodiscard]] const KnativeServiceSpec& spec() const noexcept { return spec_; }
  [[nodiscard]] const std::string& authority() const noexcept { return authority_; }
  /// Aggregate wfbench failure counters across live pods plus terminated
  /// history (OOM kills etc.).
  [[nodiscard]] std::uint64_t service_oom_failures() const noexcept;

 private:
  void handle_request(const net::HttpRequest& request,
                      std::shared_ptr<net::Responder> responder);
  /// Moves buffered requests onto pods with spare concurrency.
  void pump();
  [[nodiscard]] Pod* pick_pod();
  void autoscale_tick(sim::SimTime now);
  void scale_up(int count);
  void scale_down(int count);
  void reap_terminated();

  sim::Context& sim_;
  cluster::Cluster& cluster_;
  storage::DataStore& fs_;
  storage::CachedStore* cache_ = nullptr;
  net::Router& router_;
  KnativeServiceSpec spec_;
  std::string authority_;

  KubeScheduler scheduler_;
  Activator activator_;
  Autoscaler autoscaler_;
  sim::PeriodicTask scaler_loop_;

  std::vector<std::unique_ptr<Pod>> pods_;
  support::Rng chaos_rng_{0xC0FFEEULL};
  std::uint64_t next_pod_ordinal_ = 1;
  std::uint64_t retired_oom_failures_ = 0;
  KnativePlatformStats stats_;
  bool deployed_ = false;
  obs::TraceRecorder* trace_ = nullptr;
  obs::TraceRecorder::Pid trace_pid_ = 0;
  obs::TraceRecorder::Tid autoscaler_lane_ = 0;
  obs::TraceRecorder::Tid activator_lane_ = 0;

  // Metric handles, resolved once in set_metrics (nullptr = metrics off).
  metrics::Histogram* cold_start_hist_ = nullptr;
  metrics::Counter* pods_created_metric_ = nullptr;
  metrics::Counter* pods_terminated_metric_ = nullptr;
  metrics::Counter* scale_ups_metric_ = nullptr;
  metrics::Counter* scale_downs_metric_ = nullptr;
  metrics::Counter* panic_ticks_metric_ = nullptr;
  metrics::Counter* scheduling_failures_metric_ = nullptr;
  metrics::Gauge* ready_pods_metric_ = nullptr;
  metrics::Gauge* desired_pods_metric_ = nullptr;
};

}  // namespace wfs::faas
