#include "faas/service_config.h"

// Currently header-only data; this translation unit anchors the module and
// keeps the build layout uniform (one .cpp per header).
