#include "faas/kube_scheduler.h"

#include "storage/cached_store.h"

namespace wfs::faas {

cluster::Node* KubeScheduler::place(double cpu_request, std::uint64_t memory_request) {
  return place(cpu_request, memory_request, {});
}

cluster::Node* KubeScheduler::place(double cpu_request, std::uint64_t memory_request,
                                    const std::vector<std::string>& locality_inputs) {
  const bool locality = cache_ != nullptr && !locality_inputs.empty();
  cluster::Node* best = nullptr;
  double best_score = -1.0;
  std::uint64_t best_cached = 0;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    cluster::Node& node = cluster_.node(i);
    const cluster::ResourceLedger& ledger = node.ledger();
    if (ledger.free_cpus() + 1e-9 < cpu_request) continue;
    if (ledger.free_memory() < memory_request) continue;
    const double cpu_free = ledger.free_cpus() / ledger.total_cpus();
    const double mem_free = static_cast<double>(ledger.free_memory()) /
                            static_cast<double>(ledger.total_memory());
    // LeastAllocated: the emptiest node wins (spread). MostAllocated: the
    // fullest node that still fits wins (bin-pack).
    double score = 0.5 * (cpu_free + mem_free);
    if (strategy_ == Strategy::kMostAllocated) score = 1.0 - score;
    // Cached input bytes dominate the strategy score: reading locally beats
    // any free-resource spread, and the strategy decides only among nodes
    // holding equally much (usually nothing).
    const std::uint64_t cached =
        locality ? cache_->cached_bytes(node.name(), locality_inputs) : 0;
    if (best == nullptr || cached > best_cached ||
        (cached == best_cached && score > best_score)) {
      best = &node;
      best_cached = cached;
      best_score = score;
    }
  }
  if (best == nullptr) {
    ++failures_;
  } else {
    ++placements_;
    if (locality && best_cached > 0) ++locality_placements_;
  }
  return best;
}

}  // namespace wfs::faas
