#include "faas/kube_scheduler.h"

namespace wfs::faas {

cluster::Node* KubeScheduler::place(double cpu_request, std::uint64_t memory_request) {
  cluster::Node* best = nullptr;
  double best_score = -1.0;
  for (std::size_t i = 0; i < cluster_.size(); ++i) {
    cluster::Node& node = cluster_.node(i);
    const cluster::ResourceLedger& ledger = node.ledger();
    if (ledger.free_cpus() + 1e-9 < cpu_request) continue;
    if (ledger.free_memory() < memory_request) continue;
    const double cpu_free = ledger.free_cpus() / ledger.total_cpus();
    const double mem_free = static_cast<double>(ledger.free_memory()) /
                            static_cast<double>(ledger.total_memory());
    // LeastAllocated: the emptiest node wins (spread). MostAllocated: the
    // fullest node that still fits wins (bin-pack).
    double score = 0.5 * (cpu_free + mem_free);
    if (strategy_ == Strategy::kMostAllocated) score = 1.0 - score;
    if (score > best_score) {
      best_score = score;
      best = &node;
    }
  }
  if (best == nullptr) {
    ++failures_;
  } else {
    ++placements_;
  }
  return best;
}

}  // namespace wfs::faas
