#include "faas/pod.h"

#include <stdexcept>

#include "metrics/registry.h"
#include "support/log.h"

namespace wfs::faas {

Pod::Pod(sim::Context& sim, std::string name, const KnativeServiceSpec& spec,
         cluster::Node& node, storage::DataStore& fs, std::function<void(Pod&)> on_ready,
         obs::TraceRecorder* trace, obs::TraceRecorder::Pid trace_pid,
         metrics::Histogram* cold_start_hist)
    : sim_(sim),
      name_(std::move(name)),
      spec_(spec),
      node_(node),
      fs_(fs),
      cold_start_hist_(cold_start_hist) {
  if (!node_.ledger().try_reserve(spec_.cpu_request, spec_.memory_request)) {
    throw std::runtime_error("Pod: node reservation failed for " + name_);
  }
  if (spec_.cpu_limit > 0.0) quota_group_ = node_.create_quota_group(spec_.cpu_limit);
  created_at_ = sim_.now();
  idle_since_ = sim_.now();
  if (trace != nullptr && trace->enabled()) {
    trace_ = trace;
    trace_pid_ = trace_pid;
    trace_lane_ = trace_->lane(trace_pid_, name_);
    json::Object args;
    args.set("node", node_.name());
    trace_->instant(trace_pid_, trace_lane_, name_, "pod-scheduled", created_at_,
                    std::move(args));
  }

  cold_start_event_ =
      sim_.schedule_in(spec_.cold_start, [this, on_ready = std::move(on_ready)] {
        cold_start_event_ = 0;
        wfbench::ServiceConfig container = spec_.container;
        if (spec_.memory_limit > 0) container.memory_limit_bytes = spec_.memory_limit;
        service_ = std::make_unique<wfbench::WfBenchService>(sim_, node_, fs_, container,
                                                             quota_group_);
        state_ = PodState::kReady;
        ready_at_ = sim_.now();
        idle_since_ = sim_.now();
        if (cold_start_hist_ != nullptr) {
          cold_start_hist_->observe(sim::to_seconds(ready_at_ - created_at_));
        }
        if (trace_ != nullptr) {
          trace_->complete(trace_pid_, trace_lane_, name_, "cold-start", created_at_,
                           ready_at_);
        }
        WFS_LOG_DEBUG("faas", "pod {} ready on {}", name_, node_.name());
        if (on_ready) on_ready(*this);
      });
}

Pod::~Pod() { terminate(); }

void Pod::terminate() {
  if (state_ == PodState::kTerminated) return;
  if (cold_start_event_ != 0) {
    sim_.cancel(cold_start_event_);
    cold_start_event_ = 0;
  }
  if (service_) {
    service_->shutdown();
    service_.reset();
  }
  if (quota_group_ != cluster::kNoQuotaGroup) {
    node_.destroy_quota_group(quota_group_);
    quota_group_ = cluster::kNoQuotaGroup;
  }
  node_.ledger().release(spec_.cpu_request, spec_.memory_request);
  if (trace_ != nullptr) {
    if (ready_at_ >= 0) {
      trace_->complete(trace_pid_, trace_lane_, name_, "serving", ready_at_, sim_.now());
    }
    trace_->instant(trace_pid_, trace_lane_, name_, "pod-terminated", sim_.now());
  }
  state_ = PodState::kTerminated;
  WFS_LOG_DEBUG("faas", "pod {} terminated", name_);
}

}  // namespace wfs::faas
