// The KPA-style concurrency autoscaler (decision logic only — the platform
// applies decisions by creating/terminating pods).
//
// Mirrors Knative's knative-services autoscaler: a stable window and a
// short panic window average the observed concurrency; desired pods =
// ceil(avg / target). A burst (panic desired >= threshold x ready) enters
// panic mode, during which the scaler never scales down. Scale-to-zero
// happens only after the grace period with zero observed concurrency.
#pragma once

#include <deque>

#include "faas/service_config.h"
#include "sim/clock.h"

namespace wfs::faas {

class Autoscaler {
 public:
  Autoscaler(AutoscalerConfig config, double target_concurrency, int min_scale, int max_scale);

  /// Records one concurrency observation (call every tick).
  void observe(sim::SimTime now, double concurrency);

  struct Decision {
    int desired = 0;
    bool panic = false;
  };

  /// Computes the desired replica count given currently ready pods.
  [[nodiscard]] Decision decide(sim::SimTime now, int ready_pods);

  [[nodiscard]] double stable_average(sim::SimTime now) const;
  [[nodiscard]] double panic_average(sim::SimTime now) const;
  [[nodiscard]] bool in_panic() const noexcept { return panic_until_ > 0; }

 private:
  [[nodiscard]] double window_average(sim::SimTime now, sim::SimTime window) const;

  AutoscalerConfig config_;
  double target_;
  int min_scale_;
  int max_scale_;

  struct Sample {
    sim::SimTime time;
    double value;
  };
  std::deque<Sample> samples_;
  sim::SimTime panic_until_ = 0;
  int panic_peak_desired_ = 0;
  /// Last instant concurrency was observed > 0 (guards scale-to-zero).
  sim::SimTime last_active_ = 0;
  bool saw_traffic_ = false;
};

}  // namespace wfs::faas
