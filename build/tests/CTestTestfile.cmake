# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/json_test[1]_include.cmake")
include("/root/repo/build/tests/sim_test[1]_include.cmake")
include("/root/repo/build/tests/cluster_test[1]_include.cmake")
include("/root/repo/build/tests/storage_net_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/wfcommons_test[1]_include.cmake")
include("/root/repo/build/tests/wfbench_test[1]_include.cmake")
include("/root/repo/build/tests/faas_test[1]_include.cmake")
include("/root/repo/build/tests/containers_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
