# Empty dependencies file for containers_test.
# This may be replaced when dependencies are built.
