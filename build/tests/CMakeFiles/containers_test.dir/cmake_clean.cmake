file(REMOVE_RECURSE
  "CMakeFiles/containers_test.dir/containers_test.cpp.o"
  "CMakeFiles/containers_test.dir/containers_test.cpp.o.d"
  "containers_test"
  "containers_test.pdb"
  "containers_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/containers_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
