file(REMOVE_RECURSE
  "CMakeFiles/wfcommons_test.dir/wfcommons_test.cpp.o"
  "CMakeFiles/wfcommons_test.dir/wfcommons_test.cpp.o.d"
  "wfcommons_test"
  "wfcommons_test.pdb"
  "wfcommons_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfcommons_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
