# Empty compiler generated dependencies file for wfcommons_test.
# This may be replaced when dependencies are built.
