# Empty dependencies file for json_test.
# This may be replaced when dependencies are built.
