# Empty dependencies file for wfbench_test.
# This may be replaced when dependencies are built.
