file(REMOVE_RECURSE
  "CMakeFiles/wfbench_test.dir/wfbench_test.cpp.o"
  "CMakeFiles/wfbench_test.dir/wfbench_test.cpp.o.d"
  "wfbench_test"
  "wfbench_test.pdb"
  "wfbench_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfbench_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
