# Empty dependencies file for storage_net_test.
# This may be replaced when dependencies are built.
