file(REMOVE_RECURSE
  "CMakeFiles/storage_net_test.dir/storage_net_test.cpp.o"
  "CMakeFiles/storage_net_test.dir/storage_net_test.cpp.o.d"
  "storage_net_test"
  "storage_net_test.pdb"
  "storage_net_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/storage_net_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
