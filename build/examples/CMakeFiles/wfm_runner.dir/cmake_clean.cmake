file(REMOVE_RECURSE
  "CMakeFiles/wfm_runner.dir/wfm_runner.cpp.o"
  "CMakeFiles/wfm_runner.dir/wfm_runner.cpp.o.d"
  "wfm_runner"
  "wfm_runner.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wfm_runner.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
