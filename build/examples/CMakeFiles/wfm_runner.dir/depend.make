# Empty dependencies file for wfm_runner.
# This may be replaced when dependencies are built.
