file(REMOVE_RECURSE
  "CMakeFiles/run_all_wfbench.dir/run_all_wfbench.cpp.o"
  "CMakeFiles/run_all_wfbench.dir/run_all_wfbench.cpp.o.d"
  "run_all_wfbench"
  "run_all_wfbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/run_all_wfbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
