# Empty dependencies file for run_all_wfbench.
# This may be replaced when dependencies are built.
