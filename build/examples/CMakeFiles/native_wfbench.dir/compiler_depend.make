# Empty compiler generated dependencies file for native_wfbench.
# This may be replaced when dependencies are built.
