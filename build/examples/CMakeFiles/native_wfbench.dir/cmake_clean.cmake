file(REMOVE_RECURSE
  "CMakeFiles/native_wfbench.dir/native_wfbench.cpp.o"
  "CMakeFiles/native_wfbench.dir/native_wfbench.cpp.o.d"
  "native_wfbench"
  "native_wfbench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/native_wfbench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
