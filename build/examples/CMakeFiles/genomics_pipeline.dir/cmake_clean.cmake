file(REMOVE_RECURSE
  "CMakeFiles/genomics_pipeline.dir/genomics_pipeline.cpp.o"
  "CMakeFiles/genomics_pipeline.dir/genomics_pipeline.cpp.o.d"
  "genomics_pipeline"
  "genomics_pipeline.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/genomics_pipeline.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
