# Empty compiler generated dependencies file for genomics_pipeline.
# This may be replaced when dependencies are built.
