# Empty dependencies file for paradigm_explorer.
# This may be replaced when dependencies are built.
