file(REMOVE_RECURSE
  "CMakeFiles/paradigm_explorer.dir/paradigm_explorer.cpp.o"
  "CMakeFiles/paradigm_explorer.dir/paradigm_explorer.cpp.o.d"
  "paradigm_explorer"
  "paradigm_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/paradigm_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
