# Empty dependencies file for hybrid_execution.
# This may be replaced when dependencies are built.
