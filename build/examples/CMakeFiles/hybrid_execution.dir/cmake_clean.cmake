file(REMOVE_RECURSE
  "CMakeFiles/hybrid_execution.dir/hybrid_execution.cpp.o"
  "CMakeFiles/hybrid_execution.dir/hybrid_execution.cpp.o.d"
  "hybrid_execution"
  "hybrid_execution.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hybrid_execution.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
