
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cluster/cluster.cpp" "src/CMakeFiles/wfserverless.dir/cluster/cluster.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/cluster/cluster.cpp.o.d"
  "/root/repo/src/cluster/node.cpp" "src/CMakeFiles/wfserverless.dir/cluster/node.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/cluster/node.cpp.o.d"
  "/root/repo/src/cluster/power.cpp" "src/CMakeFiles/wfserverless.dir/cluster/power.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/cluster/power.cpp.o.d"
  "/root/repo/src/cluster/resource_ledger.cpp" "src/CMakeFiles/wfserverless.dir/cluster/resource_ledger.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/cluster/resource_ledger.cpp.o.d"
  "/root/repo/src/containers/container.cpp" "src/CMakeFiles/wfserverless.dir/containers/container.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/containers/container.cpp.o.d"
  "/root/repo/src/containers/runtime.cpp" "src/CMakeFiles/wfserverless.dir/containers/runtime.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/containers/runtime.cpp.o.d"
  "/root/repo/src/core/campaign.cpp" "src/CMakeFiles/wfserverless.dir/core/campaign.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/campaign.cpp.o.d"
  "/root/repo/src/core/dag.cpp" "src/CMakeFiles/wfserverless.dir/core/dag.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/dag.cpp.o.d"
  "/root/repo/src/core/experiment.cpp" "src/CMakeFiles/wfserverless.dir/core/experiment.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/experiment.cpp.o.d"
  "/root/repo/src/core/fleet.cpp" "src/CMakeFiles/wfserverless.dir/core/fleet.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/fleet.cpp.o.d"
  "/root/repo/src/core/paradigm.cpp" "src/CMakeFiles/wfserverless.dir/core/paradigm.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/paradigm.cpp.o.d"
  "/root/repo/src/core/report.cpp" "src/CMakeFiles/wfserverless.dir/core/report.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/report.cpp.o.d"
  "/root/repo/src/core/results_io.cpp" "src/CMakeFiles/wfserverless.dir/core/results_io.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/results_io.cpp.o.d"
  "/root/repo/src/core/trace.cpp" "src/CMakeFiles/wfserverless.dir/core/trace.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/trace.cpp.o.d"
  "/root/repo/src/core/workflow_manager.cpp" "src/CMakeFiles/wfserverless.dir/core/workflow_manager.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/core/workflow_manager.cpp.o.d"
  "/root/repo/src/faas/activator.cpp" "src/CMakeFiles/wfserverless.dir/faas/activator.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/faas/activator.cpp.o.d"
  "/root/repo/src/faas/autoscaler.cpp" "src/CMakeFiles/wfserverless.dir/faas/autoscaler.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/faas/autoscaler.cpp.o.d"
  "/root/repo/src/faas/kube_scheduler.cpp" "src/CMakeFiles/wfserverless.dir/faas/kube_scheduler.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/faas/kube_scheduler.cpp.o.d"
  "/root/repo/src/faas/platform.cpp" "src/CMakeFiles/wfserverless.dir/faas/platform.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/faas/platform.cpp.o.d"
  "/root/repo/src/faas/pod.cpp" "src/CMakeFiles/wfserverless.dir/faas/pod.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/faas/pod.cpp.o.d"
  "/root/repo/src/faas/service_config.cpp" "src/CMakeFiles/wfserverless.dir/faas/service_config.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/faas/service_config.cpp.o.d"
  "/root/repo/src/json/parse.cpp" "src/CMakeFiles/wfserverless.dir/json/parse.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/json/parse.cpp.o.d"
  "/root/repo/src/json/value.cpp" "src/CMakeFiles/wfserverless.dir/json/value.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/json/value.cpp.o.d"
  "/root/repo/src/json/write.cpp" "src/CMakeFiles/wfserverless.dir/json/write.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/json/write.cpp.o.d"
  "/root/repo/src/metrics/aggregate.cpp" "src/CMakeFiles/wfserverless.dir/metrics/aggregate.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/metrics/aggregate.cpp.o.d"
  "/root/repo/src/metrics/ascii_chart.cpp" "src/CMakeFiles/wfserverless.dir/metrics/ascii_chart.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/metrics/ascii_chart.cpp.o.d"
  "/root/repo/src/metrics/pmdump.cpp" "src/CMakeFiles/wfserverless.dir/metrics/pmdump.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/metrics/pmdump.cpp.o.d"
  "/root/repo/src/metrics/sampler.cpp" "src/CMakeFiles/wfserverless.dir/metrics/sampler.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/metrics/sampler.cpp.o.d"
  "/root/repo/src/metrics/time_series.cpp" "src/CMakeFiles/wfserverless.dir/metrics/time_series.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/metrics/time_series.cpp.o.d"
  "/root/repo/src/net/http.cpp" "src/CMakeFiles/wfserverless.dir/net/http.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/net/http.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/CMakeFiles/wfserverless.dir/net/router.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/net/router.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/wfserverless.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/periodic.cpp" "src/CMakeFiles/wfserverless.dir/sim/periodic.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/sim/periodic.cpp.o.d"
  "/root/repo/src/sim/simulation.cpp" "src/CMakeFiles/wfserverless.dir/sim/simulation.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/sim/simulation.cpp.o.d"
  "/root/repo/src/storage/object_store.cpp" "src/CMakeFiles/wfserverless.dir/storage/object_store.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/storage/object_store.cpp.o.d"
  "/root/repo/src/storage/shared_fs.cpp" "src/CMakeFiles/wfserverless.dir/storage/shared_fs.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/storage/shared_fs.cpp.o.d"
  "/root/repo/src/support/cli.cpp" "src/CMakeFiles/wfserverless.dir/support/cli.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/support/cli.cpp.o.d"
  "/root/repo/src/support/format.cpp" "src/CMakeFiles/wfserverless.dir/support/format.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/support/format.cpp.o.d"
  "/root/repo/src/support/log.cpp" "src/CMakeFiles/wfserverless.dir/support/log.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/support/log.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/CMakeFiles/wfserverless.dir/support/rng.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/support/rng.cpp.o.d"
  "/root/repo/src/support/strings.cpp" "src/CMakeFiles/wfserverless.dir/support/strings.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/support/strings.cpp.o.d"
  "/root/repo/src/support/units.cpp" "src/CMakeFiles/wfserverless.dir/support/units.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/support/units.cpp.o.d"
  "/root/repo/src/wfbench/native.cpp" "src/CMakeFiles/wfserverless.dir/wfbench/native.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfbench/native.cpp.o.d"
  "/root/repo/src/wfbench/service.cpp" "src/CMakeFiles/wfserverless.dir/wfbench/service.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfbench/service.cpp.o.d"
  "/root/repo/src/wfbench/stress_model.cpp" "src/CMakeFiles/wfserverless.dir/wfbench/stress_model.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfbench/stress_model.cpp.o.d"
  "/root/repo/src/wfbench/task_params.cpp" "src/CMakeFiles/wfserverless.dir/wfbench/task_params.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfbench/task_params.cpp.o.d"
  "/root/repo/src/wfcommons/analysis.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/analysis.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/analysis.cpp.o.d"
  "/root/repo/src/wfcommons/bench_spec.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/bench_spec.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/bench_spec.cpp.o.d"
  "/root/repo/src/wfcommons/generator.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/generator.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/generator.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/blast.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/blast.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/blast.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/bwa.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/bwa.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/bwa.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/cycles.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/cycles.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/cycles.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/epigenomics.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/epigenomics.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/epigenomics.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/genome.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/genome.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/genome.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/recipe.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/recipe.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/recipe.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/seismology.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/seismology.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/seismology.cpp.o.d"
  "/root/repo/src/wfcommons/recipes/srasearch.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/srasearch.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/recipes/srasearch.cpp.o.d"
  "/root/repo/src/wfcommons/translators/hybrid.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/hybrid.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/hybrid.cpp.o.d"
  "/root/repo/src/wfcommons/translators/knative.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/knative.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/knative.cpp.o.d"
  "/root/repo/src/wfcommons/translators/local_container.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/local_container.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/local_container.cpp.o.d"
  "/root/repo/src/wfcommons/translators/nextflow.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/nextflow.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/nextflow.cpp.o.d"
  "/root/repo/src/wfcommons/translators/pegasus.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/pegasus.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/pegasus.cpp.o.d"
  "/root/repo/src/wfcommons/translators/translator.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/translator.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/translators/translator.cpp.o.d"
  "/root/repo/src/wfcommons/visualization.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/visualization.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/visualization.cpp.o.d"
  "/root/repo/src/wfcommons/wfchef.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/wfchef.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/wfchef.cpp.o.d"
  "/root/repo/src/wfcommons/wfformat.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/wfformat.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/wfformat.cpp.o.d"
  "/root/repo/src/wfcommons/wfinstances.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/wfinstances.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/wfinstances.cpp.o.d"
  "/root/repo/src/wfcommons/workflow.cpp" "src/CMakeFiles/wfserverless.dir/wfcommons/workflow.cpp.o" "gcc" "src/CMakeFiles/wfserverless.dir/wfcommons/workflow.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
