# Empty compiler generated dependencies file for wfserverless.
# This may be replaced when dependencies are built.
