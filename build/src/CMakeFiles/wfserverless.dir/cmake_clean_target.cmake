file(REMOVE_RECURSE
  "libwfserverless.a"
)
