file(REMOVE_RECURSE
  "CMakeFiles/table2_paradigms.dir/table2_paradigms.cpp.o"
  "CMakeFiles/table2_paradigms.dir/table2_paradigms.cpp.o.d"
  "table2_paradigms"
  "table2_paradigms.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table2_paradigms.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
