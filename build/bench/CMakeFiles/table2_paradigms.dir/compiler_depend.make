# Empty compiler generated dependencies file for table2_paradigms.
# This may be replaced when dependencies are built.
