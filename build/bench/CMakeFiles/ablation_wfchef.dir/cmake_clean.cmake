file(REMOVE_RECURSE
  "CMakeFiles/ablation_wfchef.dir/ablation_wfchef.cpp.o"
  "CMakeFiles/ablation_wfchef.dir/ablation_wfchef.cpp.o.d"
  "ablation_wfchef"
  "ablation_wfchef.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_wfchef.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
