# Empty compiler generated dependencies file for ablation_wfchef.
# This may be replaced when dependencies are built.
