# Empty dependencies file for ablation_hybrid.
# This may be replaced when dependencies are built.
