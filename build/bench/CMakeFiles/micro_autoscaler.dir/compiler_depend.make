# Empty compiler generated dependencies file for micro_autoscaler.
# This may be replaced when dependencies are built.
