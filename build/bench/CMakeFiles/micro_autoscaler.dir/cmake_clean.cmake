file(REMOVE_RECURSE
  "CMakeFiles/micro_autoscaler.dir/micro_autoscaler.cpp.o"
  "CMakeFiles/micro_autoscaler.dir/micro_autoscaler.cpp.o.d"
  "micro_autoscaler"
  "micro_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
