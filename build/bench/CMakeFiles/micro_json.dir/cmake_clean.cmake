file(REMOVE_RECURSE
  "CMakeFiles/micro_json.dir/micro_json.cpp.o"
  "CMakeFiles/micro_json.dir/micro_json.cpp.o.d"
  "micro_json"
  "micro_json.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_json.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
