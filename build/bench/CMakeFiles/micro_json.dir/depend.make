# Empty dependencies file for micro_json.
# This may be replaced when dependencies are built.
