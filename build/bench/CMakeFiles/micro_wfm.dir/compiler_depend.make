# Empty compiler generated dependencies file for micro_wfm.
# This may be replaced when dependencies are built.
