file(REMOVE_RECURSE
  "CMakeFiles/micro_wfm.dir/micro_wfm.cpp.o"
  "CMakeFiles/micro_wfm.dir/micro_wfm.cpp.o.d"
  "micro_wfm"
  "micro_wfm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_wfm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
