file(REMOVE_RECURSE
  "CMakeFiles/ablation_concurrent_workflows.dir/ablation_concurrent_workflows.cpp.o"
  "CMakeFiles/ablation_concurrent_workflows.dir/ablation_concurrent_workflows.cpp.o.d"
  "ablation_concurrent_workflows"
  "ablation_concurrent_workflows.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_concurrent_workflows.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
