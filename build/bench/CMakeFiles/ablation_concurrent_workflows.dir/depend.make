# Empty dependencies file for ablation_concurrent_workflows.
# This may be replaced when dependencies are built.
