# Empty compiler generated dependencies file for table1_experiment_design.
# This may be replaced when dependencies are built.
