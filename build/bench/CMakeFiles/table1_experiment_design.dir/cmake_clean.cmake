file(REMOVE_RECURSE
  "CMakeFiles/table1_experiment_design.dir/table1_experiment_design.cpp.o"
  "CMakeFiles/table1_experiment_design.dir/table1_experiment_design.cpp.o.d"
  "table1_experiment_design"
  "table1_experiment_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_experiment_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
