# Empty dependencies file for ablation_phase_delay.
# This may be replaced when dependencies are built.
