file(REMOVE_RECURSE
  "CMakeFiles/ablation_phase_delay.dir/ablation_phase_delay.cpp.o"
  "CMakeFiles/ablation_phase_delay.dir/ablation_phase_delay.cpp.o.d"
  "ablation_phase_delay"
  "ablation_phase_delay.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_phase_delay.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
