file(REMOVE_RECURSE
  "CMakeFiles/fig5_local_container_setups.dir/fig5_local_container_setups.cpp.o"
  "CMakeFiles/fig5_local_container_setups.dir/fig5_local_container_setups.cpp.o.d"
  "fig5_local_container_setups"
  "fig5_local_container_setups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_local_container_setups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
