# Empty dependencies file for fig5_local_container_setups.
# This may be replaced when dependencies are built.
