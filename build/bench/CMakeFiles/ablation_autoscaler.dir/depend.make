# Empty dependencies file for ablation_autoscaler.
# This may be replaced when dependencies are built.
