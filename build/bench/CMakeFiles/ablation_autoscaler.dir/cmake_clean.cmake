file(REMOVE_RECURSE
  "CMakeFiles/ablation_autoscaler.dir/ablation_autoscaler.cpp.o"
  "CMakeFiles/ablation_autoscaler.dir/ablation_autoscaler.cpp.o.d"
  "ablation_autoscaler"
  "ablation_autoscaler.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_autoscaler.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
