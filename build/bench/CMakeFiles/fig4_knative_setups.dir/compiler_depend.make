# Empty compiler generated dependencies file for fig4_knative_setups.
# This may be replaced when dependencies are built.
