file(REMOVE_RECURSE
  "CMakeFiles/fig4_knative_setups.dir/fig4_knative_setups.cpp.o"
  "CMakeFiles/fig4_knative_setups.dir/fig4_knative_setups.cpp.o.d"
  "fig4_knative_setups"
  "fig4_knative_setups.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_knative_setups.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
