# Empty compiler generated dependencies file for ablation_chaos.
# This may be replaced when dependencies are built.
