file(REMOVE_RECURSE
  "CMakeFiles/ablation_chaos.dir/ablation_chaos.cpp.o"
  "CMakeFiles/ablation_chaos.dir/ablation_chaos.cpp.o.d"
  "ablation_chaos"
  "ablation_chaos.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_chaos.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
