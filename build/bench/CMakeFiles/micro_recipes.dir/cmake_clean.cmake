file(REMOVE_RECURSE
  "CMakeFiles/micro_recipes.dir/micro_recipes.cpp.o"
  "CMakeFiles/micro_recipes.dir/micro_recipes.cpp.o.d"
  "micro_recipes"
  "micro_recipes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_recipes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
