# Empty compiler generated dependencies file for micro_recipes.
# This may be replaced when dependencies are built.
