file(REMOVE_RECURSE
  "CMakeFiles/micro_sim.dir/micro_sim.cpp.o"
  "CMakeFiles/micro_sim.dir/micro_sim.cpp.o.d"
  "micro_sim"
  "micro_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
