# Empty compiler generated dependencies file for fig6_coarse_grained.
# This may be replaced when dependencies are built.
