file(REMOVE_RECURSE
  "CMakeFiles/fig6_coarse_grained.dir/fig6_coarse_grained.cpp.o"
  "CMakeFiles/fig6_coarse_grained.dir/fig6_coarse_grained.cpp.o.d"
  "fig6_coarse_grained"
  "fig6_coarse_grained.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_coarse_grained.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
