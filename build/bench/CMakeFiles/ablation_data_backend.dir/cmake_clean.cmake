file(REMOVE_RECURSE
  "CMakeFiles/ablation_data_backend.dir/ablation_data_backend.cpp.o"
  "CMakeFiles/ablation_data_backend.dir/ablation_data_backend.cpp.o.d"
  "ablation_data_backend"
  "ablation_data_backend.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_data_backend.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
