# Empty compiler generated dependencies file for ablation_data_backend.
# This may be replaced when dependencies are built.
