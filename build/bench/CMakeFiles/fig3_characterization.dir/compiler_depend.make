# Empty compiler generated dependencies file for fig3_characterization.
# This may be replaced when dependencies are built.
