file(REMOVE_RECURSE
  "CMakeFiles/fig3_characterization.dir/fig3_characterization.cpp.o"
  "CMakeFiles/fig3_characterization.dir/fig3_characterization.cpp.o.d"
  "fig3_characterization"
  "fig3_characterization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig3_characterization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
