file(REMOVE_RECURSE
  "CMakeFiles/fig7_serverless_vs_lc.dir/fig7_serverless_vs_lc.cpp.o"
  "CMakeFiles/fig7_serverless_vs_lc.dir/fig7_serverless_vs_lc.cpp.o.d"
  "fig7_serverless_vs_lc"
  "fig7_serverless_vs_lc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_serverless_vs_lc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
