# Empty compiler generated dependencies file for fig7_serverless_vs_lc.
# This may be replaced when dependencies are built.
