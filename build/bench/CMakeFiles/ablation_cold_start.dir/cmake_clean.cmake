file(REMOVE_RECURSE
  "CMakeFiles/ablation_cold_start.dir/ablation_cold_start.cpp.o"
  "CMakeFiles/ablation_cold_start.dir/ablation_cold_start.cpp.o.d"
  "ablation_cold_start"
  "ablation_cold_start.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_cold_start.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
