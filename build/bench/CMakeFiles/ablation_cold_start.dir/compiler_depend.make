# Empty compiler generated dependencies file for ablation_cold_start.
# This may be replaced when dependencies are built.
